//! Checkpointing and garbage collection (Algorithm 4).
//!
//! Every `checkpoint_interval` executed BFTblocks each replica threshold-signs a
//! checkpoint statement `⟨checkpoint, sn, H(state)⟩` and sends it to the leader; the
//! leader combines `2f+1` shares into a checkpoint proof and multicasts it. A valid
//! proof advances the low watermark `lw` and lets replicas prune executed datablocks and
//! instances below it.

use crate::instance::ShareCollector;
use leopard_crypto::threshold::{CombinedSignature, SignatureShare};
use leopard_crypto::{hash_parts, Digest};
use leopard_types::{FastMap, SeqNum};

/// The digest replicas sign for a checkpoint at `seq` with execution-state digest
/// `state`.
pub fn checkpoint_digest(seq: SeqNum, state: &Digest) -> Digest {
    hash_parts([b"checkpoint".as_slice(), &seq.0.to_le_bytes(), state.as_bytes()])
}

/// Checkpoint bookkeeping for one replica (leader and non-leader roles).
#[derive(Debug, Default)]
pub struct CheckpointState {
    /// The latest stable (proven) checkpoint sequence number; this is the low watermark.
    stable: SeqNum,
    /// State digest and combined proof of the stable checkpoint, kept so this replica
    /// can serve state-transfer requests (`None` only at the genesis checkpoint, which
    /// needs no proof).
    stable_proof: Option<(Digest, CombinedSignature)>,
    /// Leader-side share collection per candidate checkpoint, keyed by the full
    /// `(seq, state)` claim so an equivocating replica's divergent digest collects in
    /// its own (never-completing) bucket instead of blocking the honest quorum.
    collecting: FastMap<(SeqNum, Digest), ShareCollector>,
}

impl CheckpointState {
    /// Creates the initial state (stable checkpoint at serial number 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current low watermark `lw`.
    pub fn low_watermark(&self) -> SeqNum {
        self.stable
    }

    /// The high watermark `lw + k`: the largest serial number the window of `k`
    /// parallel instances admits before the next checkpoint must advance `lw`.
    pub fn high_watermark(&self, k: usize) -> SeqNum {
        SeqNum(self.stable.0 + k as u64)
    }

    /// True if `seq` should trigger a checkpoint given the configured interval.
    pub fn is_checkpoint_height(seq: SeqNum, interval: u64) -> bool {
        interval > 0 && seq.0 > 0 && seq.0 % interval == 0
    }

    /// Leader-side: records a checkpoint share. Returns the shares once `quorum` of them
    /// are available for the same `(seq, state)` (exactly once).
    pub fn record_share(
        &mut self,
        seq: SeqNum,
        state: Digest,
        share: SignatureShare,
        quorum: usize,
    ) -> Option<Vec<SignatureShare>> {
        if seq <= self.stable {
            return None;
        }
        let entry = self.collecting.entry((seq, state)).or_insert_with(ShareCollector::new);
        let count = entry.add(share);
        if count == quorum {
            Some(entry.shares().to_vec())
        } else {
            None
        }
    }

    /// Advances the stable checkpoint (after verifying a checkpoint proof). Returns true
    /// if the watermark moved forward.
    pub fn advance(&mut self, seq: SeqNum) -> bool {
        if seq > self.stable {
            self.stable = seq;
            self.collecting.retain(|&(s, _), _| s > seq);
            true
        } else {
            false
        }
    }

    /// Advances the stable checkpoint and retains its (already verified) state digest
    /// and proof for serving state transfers. Returns true if the watermark moved.
    pub fn advance_proven(&mut self, seq: SeqNum, state: Digest, proof: CombinedSignature) -> bool {
        if self.advance(seq) {
            self.stable_proof = Some((state, proof));
            true
        } else {
            false
        }
    }

    /// The stable checkpoint's state digest and proof, if past genesis.
    pub fn stable_proof(&self) -> Option<&(Digest, CombinedSignature)> {
        self.stable_proof.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_crypto::hash_bytes;
    use leopard_crypto::threshold::ThresholdScheme;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn checkpoint_heights_follow_the_interval() {
        assert!(!CheckpointState::is_checkpoint_height(SeqNum(0), 8));
        assert!(!CheckpointState::is_checkpoint_height(SeqNum(7), 8));
        assert!(CheckpointState::is_checkpoint_height(SeqNum(8), 8));
        assert!(CheckpointState::is_checkpoint_height(SeqNum(16), 8));
        assert!(!CheckpointState::is_checkpoint_height(SeqNum(8), 0));
    }

    #[test]
    fn checkpoint_digest_is_deterministic_and_distinct() {
        let state = hash_bytes(b"log");
        assert_eq!(checkpoint_digest(SeqNum(8), &state), checkpoint_digest(SeqNum(8), &state));
        assert_ne!(checkpoint_digest(SeqNum(8), &state), checkpoint_digest(SeqNum(16), &state));
        assert_ne!(
            checkpoint_digest(SeqNum(8), &state),
            checkpoint_digest(SeqNum(8), &hash_bytes(b"other"))
        );
    }

    #[test]
    fn shares_accumulate_until_quorum_once() {
        let mut rng = StdRng::seed_from_u64(9);
        let (scheme, keys) = ThresholdScheme::trusted_setup(3, 4, &mut rng);
        let state = hash_bytes(b"state");
        let digest = checkpoint_digest(SeqNum(8), &state);
        let mut checkpoints = CheckpointState::new();

        let mut reached = None;
        for key in &keys[..3] {
            reached = checkpoints.record_share(SeqNum(8), state, scheme.sign_share(key, &digest), 3);
        }
        let shares = reached.expect("third share reaches the quorum");
        assert_eq!(shares.len(), 3);
        assert!(scheme.combine(&shares, &digest).is_ok());
        // A fourth share does not report quorum again.
        assert!(checkpoints
            .record_share(SeqNum(8), state, scheme.sign_share(&keys[3], &digest), 3)
            .is_none());
    }

    #[test]
    fn divergent_state_digests_collect_separately() {
        let mut rng = StdRng::seed_from_u64(9);
        let (scheme, keys) = ThresholdScheme::trusted_setup(3, 4, &mut rng);
        let state_a = hash_bytes(b"a");
        let state_b = hash_bytes(b"b");
        let digest_a = checkpoint_digest(SeqNum(8), &state_a);
        let digest_b = checkpoint_digest(SeqNum(8), &state_b);
        let mut checkpoints = CheckpointState::new();
        // The equivocating share arrives FIRST — it must not poison the height.
        assert!(checkpoints
            .record_share(SeqNum(8), state_b, scheme.sign_share(&keys[3], &digest_b), 3)
            .is_none());
        let mut reached = None;
        for key in &keys[..3] {
            reached =
                checkpoints.record_share(SeqNum(8), state_a, scheme.sign_share(key, &digest_a), 3);
        }
        let shares = reached.expect("the honest quorum still forms");
        assert!(scheme.combine(&shares, &digest_a).is_ok());
    }

    #[test]
    fn advance_moves_watermark_monotonically() {
        let mut checkpoints = CheckpointState::new();
        assert_eq!(checkpoints.low_watermark(), SeqNum(0));
        assert!(checkpoints.advance(SeqNum(8)));
        assert_eq!(checkpoints.low_watermark(), SeqNum(8));
        assert!(!checkpoints.advance(SeqNum(4)));
        assert!(!checkpoints.advance(SeqNum(8)));
        assert!(checkpoints.advance(SeqNum(16)));
        assert_eq!(checkpoints.low_watermark(), SeqNum(16));
    }

    #[test]
    fn advance_proven_retains_the_stable_proof_for_state_transfer() {
        let mut rng = StdRng::seed_from_u64(9);
        let (scheme, keys) = ThresholdScheme::trusted_setup(3, 4, &mut rng);
        let state = hash_bytes(b"state");
        let digest = checkpoint_digest(SeqNum(8), &state);
        let shares: Vec<_> = keys[..3].iter().map(|k| scheme.sign_share(k, &digest)).collect();
        let proof = scheme.combine(&shares, &digest).unwrap();

        let mut checkpoints = CheckpointState::new();
        assert!(checkpoints.stable_proof().is_none());
        assert!(checkpoints.advance_proven(SeqNum(8), state, proof));
        let (stored_state, stored_proof) = checkpoints.stable_proof().expect("proof retained");
        assert_eq!(*stored_state, state);
        assert!(scheme.verify_combined(stored_proof, &digest));
        // A stale advance neither moves the watermark nor clobbers the proof.
        assert!(!checkpoints.advance_proven(SeqNum(4), hash_bytes(b"old"), proof));
        assert_eq!(checkpoints.stable_proof().unwrap().0, state);
    }

    #[test]
    fn shares_below_the_watermark_are_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let (scheme, keys) = ThresholdScheme::trusted_setup(3, 4, &mut rng);
        let state = hash_bytes(b"state");
        let digest = checkpoint_digest(SeqNum(8), &state);
        let mut checkpoints = CheckpointState::new();
        checkpoints.advance(SeqNum(8));
        assert!(checkpoints
            .record_share(SeqNum(8), state, scheme.sign_share(&keys[0], &digest), 3)
            .is_none());
    }
}
