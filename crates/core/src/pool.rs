//! The datablock pool (`datablockPool` in the paper) plus the leader's ready
//! bookkeeping (`readyblockPool`).

use leopard_crypto::Digest;
use leopard_types::{Datablock, FastMap, FastSet, NodeId};
use std::collections::VecDeque;
use std::sync::Arc;

/// Storage of received datablocks, indexed by digest, with per-producer counter
/// de-duplication (a producer may use each counter value only once — the rate-limit of
/// Algorithm 1).
#[derive(Debug, Default)]
pub struct DatablockPool {
    by_digest: FastMap<Digest, Arc<Datablock>>,
    seen_counters: FastMap<NodeId, FastSet<u64>>,
}

impl DatablockPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored datablocks.
    pub fn len(&self) -> usize {
        self.by_digest.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.by_digest.is_empty()
    }

    /// Inserts a datablock if its `(producer, counter)` pair has not been seen before.
    ///
    /// Returns the digest if the datablock was accepted, `None` if it was a duplicate.
    pub fn insert(&mut self, datablock: Arc<Datablock>) -> Option<Digest> {
        let counters = self.seen_counters.entry(datablock.id.producer).or_default();
        if !counters.insert(datablock.id.counter) {
            return None;
        }
        let digest = datablock.digest();
        self.by_digest.insert(digest, datablock);
        Some(digest)
    }

    /// Looks up a datablock by digest.
    pub fn get(&self, digest: &Digest) -> Option<&Arc<Datablock>> {
        self.by_digest.get(digest)
    }

    /// True if the pool holds a datablock with this digest.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.by_digest.contains_key(digest)
    }

    /// Iterates over the digests of every stored datablock (used by the harness
    /// invariant checker to snapshot retrieval completeness).
    pub fn digests(&self) -> impl Iterator<Item = &Digest> + '_ {
        self.by_digest.keys()
    }

    /// Removes datablocks whose digests appear in `digests` (garbage collection after a
    /// checkpoint). The per-producer counter history is retained so counters can never
    /// be reused.
    pub fn prune(&mut self, digests: impl IntoIterator<Item = Digest>) {
        for digest in digests {
            self.by_digest.remove(&digest);
        }
    }
}

/// The leader's ready bookkeeping: which replicas acknowledged which datablock, and the
/// FIFO queue of datablocks that reached the `2f+1` threshold but have not been linked
/// by a BFTblock yet.
#[derive(Debug, Default)]
pub struct ReadyTracker {
    acks: FastMap<Digest, FastSet<NodeId>>,
    ready_queue: VecDeque<Digest>,
    queued: FastSet<Digest>,
    linked: FastSet<Digest>,
}

impl ReadyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a ready acknowledgement. Once `quorum` distinct replicas acknowledged a
    /// datablock it joins the ready queue (exactly once).
    ///
    /// Returns true if the datablock just became ready.
    pub fn record_ack(&mut self, digest: Digest, from: NodeId, quorum: usize) -> bool {
        let acks = self.acks.entry(digest).or_default();
        acks.insert(from);
        if acks.len() >= quorum && !self.queued.contains(&digest) && !self.linked.contains(&digest)
        {
            self.queued.insert(digest);
            self.ready_queue.push_back(digest);
            true
        } else {
            false
        }
    }

    /// Number of ready, not yet linked datablocks.
    pub fn ready_count(&self) -> usize {
        self.ready_queue.len()
    }

    /// Takes up to `max` ready datablock digests to link in a new BFTblock.
    pub fn take_ready(&mut self, max: usize) -> Vec<Digest> {
        let take = max.min(self.ready_queue.len());
        let digests: Vec<Digest> = self.ready_queue.drain(..take).collect();
        for digest in &digests {
            self.queued.remove(digest);
            self.linked.insert(*digest);
        }
        digests
    }

    /// Returns previously linked digests to the front of the queue (used when a proposal
    /// is abandoned by a view-change before being confirmed).
    pub fn requeue(&mut self, digests: impl IntoIterator<Item = Digest>) {
        for digest in digests {
            if self.linked.remove(&digest) && !self.queued.contains(&digest) {
                self.queued.insert(digest);
                self.ready_queue.push_front(digest);
            }
        }
    }

    /// How many distinct replicas acknowledged `digest`.
    pub fn ack_count(&self, digest: &Digest) -> usize {
        self.acks.get(digest).map_or(0, FastSet::len)
    }

    /// Drops bookkeeping for the given digests (after checkpointing).
    pub fn prune(&mut self, digests: impl IntoIterator<Item = Digest>) {
        let mut dropped = FastSet::default();
        for digest in digests {
            self.acks.remove(&digest);
            self.linked.remove(&digest);
            if self.queued.remove(&digest) {
                dropped.insert(digest);
            }
        }
        // One queue sweep for the whole batch instead of one per digest (checkpoint GC
        // hands over every executed link at once).
        if !dropped.is_empty() {
            self.ready_queue.retain(|digest| !dropped.contains(digest));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_types::{ClientId, Request};

    fn datablock(producer: u32, counter: u64, seed: u64) -> Arc<Datablock> {
        Arc::new(Datablock::new(
            NodeId(producer),
            counter,
            vec![Request::new_synthetic(ClientId(producer), seed, 64)],
        ))
    }

    #[test]
    fn pool_inserts_and_deduplicates_by_counter() {
        let mut pool = DatablockPool::new();
        let a = datablock(1, 1, 1);
        let digest = pool.insert(a.clone()).unwrap();
        assert!(pool.contains(&digest));
        assert_eq!(pool.get(&digest).unwrap().id, a.id);
        assert_eq!(pool.len(), 1);

        // Same producer, same counter, different contents: rejected.
        let forged = datablock(1, 1, 999);
        assert!(pool.insert(forged).is_none());
        assert_eq!(pool.len(), 1);

        // Same producer, new counter: accepted.
        assert!(pool.insert(datablock(1, 2, 2)).is_some());
        // Different producer, same counter: accepted.
        assert!(pool.insert(datablock(2, 1, 3)).is_some());
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn pruning_removes_blocks_but_keeps_counter_history() {
        let mut pool = DatablockPool::new();
        let a = datablock(1, 1, 1);
        let digest = pool.insert(a).unwrap();
        pool.prune([digest]);
        assert!(!pool.contains(&digest));
        assert!(pool.is_empty());
        // Counter 1 from producer 1 can still not be reused.
        assert!(pool.insert(datablock(1, 1, 42)).is_none());
    }

    #[test]
    fn ready_tracker_requires_quorum_and_is_idempotent() {
        let mut tracker = ReadyTracker::new();
        let digest = datablock(1, 1, 1).digest();
        assert!(!tracker.record_ack(digest, NodeId(0), 3));
        assert!(!tracker.record_ack(digest, NodeId(0), 3)); // duplicate ack
        assert!(!tracker.record_ack(digest, NodeId(1), 3));
        assert!(tracker.record_ack(digest, NodeId(2), 3));
        assert_eq!(tracker.ack_count(&digest), 3);
        // Further acks do not re-queue it.
        assert!(!tracker.record_ack(digest, NodeId(3), 3));
        assert_eq!(tracker.ready_count(), 1);
    }

    #[test]
    fn take_ready_links_and_requeue_restores() {
        let mut tracker = ReadyTracker::new();
        let d1 = datablock(1, 1, 1).digest();
        let d2 = datablock(2, 1, 2).digest();
        for node in 0..3u32 {
            tracker.record_ack(d1, NodeId(node), 3);
            tracker.record_ack(d2, NodeId(node), 3);
        }
        assert_eq!(tracker.ready_count(), 2);
        let linked = tracker.take_ready(1);
        assert_eq!(linked, vec![d1]);
        assert_eq!(tracker.ready_count(), 1);
        // Once linked, more acks do not bring it back.
        assert!(!tracker.record_ack(d1, NodeId(3), 3));
        // But an explicit requeue does.
        tracker.requeue([d1]);
        assert_eq!(tracker.ready_count(), 2);
        assert_eq!(tracker.take_ready(10), vec![d1, d2]);
    }

    #[test]
    fn prune_clears_all_tracker_state() {
        let mut tracker = ReadyTracker::new();
        let d1 = datablock(1, 1, 1).digest();
        for node in 0..3u32 {
            tracker.record_ack(d1, NodeId(node), 3);
        }
        tracker.prune([d1]);
        assert_eq!(tracker.ready_count(), 0);
        assert_eq!(tracker.ack_count(&d1), 0);
    }
}
