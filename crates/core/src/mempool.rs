//! The embedded client stub and per-replica mempool.
//!
//! Clients in the paper are separate machines that pick a responsible replica with the
//! deterministic function `µ(req)` and re-submit on timeout. In this reproduction the
//! client stub is co-located with each replica (see `DESIGN.md` §3): it injects
//! synthetic requests into the local mempool at the configured rate and measures the
//! submission → execution latency of exactly the requests it injected.

use leopard_simnet::SimTime;
use leopard_types::{ClientId, FastMap, Request, RequestId};
use std::collections::VecDeque;

/// Pending-request buffer plus the client stub's latency bookkeeping.
#[derive(Debug)]
pub struct Mempool {
    client: ClientId,
    payload_size: u32,
    next_seq: u64,
    queue: VecDeque<Request>,
    /// Requests injected by the local client stub that have not been executed yet,
    /// keyed by id, with their submission time.
    outstanding: FastMap<RequestId, SimTime>,
}

impl Mempool {
    /// Creates an empty mempool whose client stub signs requests as `client`.
    pub fn new(client: ClientId, payload_size: u32) -> Self {
        Self {
            client,
            payload_size,
            next_seq: 0,
            queue: VecDeque::new(),
            outstanding: FastMap::default(),
        }
    }

    /// Number of pending (not yet batched) requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of injected requests whose acknowledgement is still outstanding.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Injects `count` synthetic requests at time `now`.
    pub fn inject(&mut self, count: usize, now: SimTime) {
        for _ in 0..count {
            let request = Request::new_synthetic(self.client, self.next_seq, self.payload_size);
            self.outstanding.insert(request.id, now);
            self.queue.push_back(request);
            self.next_seq += 1;
        }
    }

    /// Injects an externally supplied request (used by tests and the real-time examples
    /// that drive the mempool with inline payloads).
    pub fn submit(&mut self, request: Request, now: SimTime) {
        self.outstanding.insert(request.id, now);
        self.queue.push_back(request);
    }

    /// Extracts up to `max` requests for a new datablock.
    pub fn take_batch(&mut self, max: usize) -> Vec<Request> {
        let take = max.min(self.queue.len());
        self.queue.drain(..take).collect()
    }

    /// Marks a request as executed; returns the submission-to-execution latency if the
    /// request was injected by the local client stub.
    pub fn acknowledge(&mut self, id: &RequestId, now: SimTime) -> Option<u64> {
        self.outstanding
            .remove(id)
            .map(|submitted| now.saturating_since(submitted).as_nanos())
    }

    /// Total injected so far (for tests).
    pub fn injected(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_and_batch() {
        let mut pool = Mempool::new(ClientId(3), 128);
        assert!(pool.is_empty());
        pool.inject(10, SimTime(0));
        assert_eq!(pool.len(), 10);
        assert_eq!(pool.outstanding(), 10);
        assert_eq!(pool.injected(), 10);

        let batch = pool.take_batch(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(pool.len(), 6);
        // Batch extraction does not complete requests.
        assert_eq!(pool.outstanding(), 10);
        // Request ids are unique and owned by this client.
        assert!(batch.iter().all(|r| r.id.client == ClientId(3)));
    }

    #[test]
    fn take_batch_larger_than_queue_drains_it() {
        let mut pool = Mempool::new(ClientId(0), 128);
        pool.inject(3, SimTime(0));
        assert_eq!(pool.take_batch(100).len(), 3);
        assert!(pool.is_empty());
        assert!(pool.take_batch(5).is_empty());
    }

    #[test]
    fn acknowledge_measures_latency_for_own_requests_only() {
        let mut pool = Mempool::new(ClientId(1), 128);
        pool.inject(1, SimTime(1_000));
        let request = pool.take_batch(1).remove(0);
        assert_eq!(pool.acknowledge(&request.id, SimTime(5_000)), Some(4_000));
        // Second acknowledgement of the same request is ignored.
        assert_eq!(pool.acknowledge(&request.id, SimTime(9_000)), None);
        // Requests from other clients are not ours.
        let foreign = RequestId::new(ClientId(9), 0);
        assert_eq!(pool.acknowledge(&foreign, SimTime(9_000)), None);
    }

    #[test]
    fn submit_external_request() {
        let mut pool = Mempool::new(ClientId(1), 128);
        let request = Request::new_inline(ClientId(7), 3, b"external".to_vec());
        pool.submit(request.clone(), SimTime(10));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.acknowledge(&request.id, SimTime(30)), Some(20));
    }
}
