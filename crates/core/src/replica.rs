//! The Leopard replica state machine: one [`LeopardReplica`] per node, implementing
//! [`leopard_simnet::Protocol`].
//!
//! The replica combines every component of the protocol:
//!
//! * the embedded client stub and mempool ([`crate::mempool`]),
//! * datablock generation and dissemination (Algorithm 1),
//! * the ready round and the leader's BFTblock proposals,
//! * the two-round agreement with threshold-signature aggregation (Algorithm 2),
//! * datablock retrieval (Algorithm 3),
//! * checkpoints / garbage collection (Algorithm 4),
//! * the PBFT-style view-change (Appendix A),
//! * optional Byzantine behaviours ([`crate::byzantine`]).

use crate::byzantine::ByzantineBehavior;
use crate::checkpoint::{checkpoint_digest, CheckpointState};
use crate::config::{LeopardConfig, SharedKeys, WorkloadMode};
use crate::instance::{LeaderInstance, ReplicaInstance};
use crate::mempool::Mempool;
use crate::messages::{ConfirmedEntry, LeopardMessage, NotarizedEntry, RetrievalPayload};
use crate::pipeline::{Pipeline, StallReason};
use crate::pool::{DatablockPool, ReadyTracker};
use crate::retrieval::{ChunkOutcome, RetrievalManager};
use crate::view_change::{timeout_digest, view_change_wire_size, ViewChangeState};
use leopard_crypto::provider::{BatchOutcome, ComputeCost};
use leopard_crypto::threshold::{CombinedSignature, SignatureShare};
use leopard_crypto::{hash_parts, Digest};
use leopard_simnet::{Context, ObservationKind, ProgressProbe, Protocol, SimDuration, SimTime};
use leopard_types::{BftBlock, BlockState, ClientId, Datablock, FastMap, NodeId, SeqNum, View, WireSize};
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Periodic timer tokens.
const TOKEN_WORKLOAD: u64 = 1;
const TOKEN_BATCH: u64 = 2;
const TOKEN_PROPOSE: u64 = 3;
const TOKEN_PROGRESS: u64 = 4;
const TOKEN_RETRIEVAL: u64 = 5;

/// Bound on buffered future-view PrePrepares (see `deferred_pre_prepares`). A full
/// re-proposal sweep is at most `max_parallel_instances` blocks; the slack covers a
/// couple of view transitions arriving back-to-back. Beyond the cap, entries are
/// dropped — the view-change stall path recovers the loss, just more slowly.
const DEFERRED_PRE_PREPARE_CAP: usize = 256;

/// Interval of the client-stub injection timer in the open-loop workload.
const WORKLOAD_TICK: SimDuration = SimDuration(10_000_000); // 10 ms

/// Latency-breakdown bookkeeping for a datablock this replica produced.
#[derive(Debug, Clone, Copy)]
struct DatablockTiming {
    created_at: SimTime,
    oldest_request_at: SimTime,
    linked_at: Option<SimTime>,
}

/// A Leopard replica.
pub struct LeopardReplica {
    id: NodeId,
    config: LeopardConfig,
    keys: Arc<SharedKeys>,

    // --- normal-case state ---
    view: View,
    mempool: Mempool,
    pool: DatablockPool,
    ready: ReadyTracker,
    pipeline: Pipeline,
    replica_instances: BTreeMap<u64, ReplicaInstance>,
    checkpoints: CheckpointState,
    retrieval: RetrievalManager,
    datablock_counter: u64,
    own_datablocks: FastMap<Digest, DatablockTiming>,

    // --- log / execution ---
    log: BTreeMap<u64, Arc<BftBlock>>,
    last_executed: SeqNum,
    confirmed_requests: u64,
    last_confirmation_at: Option<SimTime>,
    // Highest serial this replica has seen confirmed anywhere (own stripe or not).
    // Under multiple proposers a starved stripe must not hold the whole serial
    // space hostage: an idle proposer fills its residue class with dummy blocks up
    // to this mark so execution (which is strictly sequential) can drain past it.
    highest_confirmed_seen: u64,
    // The latest view whose ViewChange quorum this replica assembled itself (the
    // genesis view counts: nothing precedes it). Proposing fresh blocks is only
    // safe in an anchored view: the quorum evidence is what bumps `pipeline`
    // past every serial an earlier view may have notarized, and stripe ownership
    // shifts by one replica per view — a proposer that entered the view through a
    // peer's NewView or a state-sync view claim has no such frontier and could
    // double-assign a serial another proposer's block already holds.
    anchored_view: View,

    // --- stall diagnostics (leader side) ---
    stall_guard: StallReason,
    stall_guard_since: SimTime,

    // --- view-change state ---
    view_changes: ViewChangeState,
    in_view_change: bool,
    view_change_started_at: Option<SimTime>,
    // PBFT's "prepared set": notarized evidence retained until a quorum checkpoint
    // covers it. `enter_view` resets live instances so replicas can vote on the
    // re-proposed blocks, but a block that may have confirmed elsewhere must keep
    // appearing in this replica's future view-change messages — dropping it would
    // let a second view change replace a confirmed block with a dummy.
    prepared: BTreeMap<u64, NotarizedEntry>,
    // PrePrepares for views ahead of this replica. The new leader's re-proposals
    // race the NewView announcement through the network; a re-proposal delivered
    // first used to be silently dropped — and PrePrepares are never re-sent, so a
    // straggler could permanently miss the re-proposed block and the serial number
    // would never regain a quorum. Buffered (bounded) and replayed on `enter_view`.
    deferred_pre_prepares: Vec<(NodeId, Arc<BftBlock>, SignatureShare)>,
    // Confirmation proofs that arrived before the notarization that binds them to a
    // block. A proof is a quorum signature over a *notarization digest*; without the
    // notarization the replica cannot tell which block was confirmed, and accepting
    // the proof blind would attach whatever block shows up next at that serial
    // number — under a view-change race, different content than the quorum signed.
    // Held (keyed by serial number) until the matching notarization arrives.
    pending_confirmations: BTreeMap<u64, (Digest, CombinedSignature)>,
    // Consecutive view changes without progress double the effective progress
    // timeout (capped at 8x). A configured timeout below the network's agreement
    // round otherwise fires mid-agreement forever: every view is abandoned before
    // its re-proposals can confirm, and the system thrashes into a permanent stall.
    progress_backoff: u32,

    // --- watchdog ---
    confirmed_at_last_check: u64,

    // --- state transfer (catch-up after a crash-restart or partition heal) ---
    state_sync_at: Option<SimTime>,
    state_sync_peers: Vec<NodeId>,
    state_sync_view_claims: Vec<(NodeId, u64)>,
    state_sync_round: u64,

    // --- client-stub pacing ---
    injection_carry: f64,
}

impl std::fmt::Debug for LeopardReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeopardReplica")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("last_executed", &self.last_executed)
            .field("confirmed_requests", &self.confirmed_requests)
            .finish()
    }
}

type Ctx<'a> = dyn Context<Message = LeopardMessage> + 'a;

/// Charges a modeled crypto cost to the replica's compute queue (free function so it
/// can be called while instance state is mutably borrowed).
fn charge(ctx: &mut Ctx<'_>, cost: ComputeCost) {
    if !cost.is_zero() {
        ctx.charge_compute(SimDuration::from_nanos(cost.as_nanos()));
    }
}

/// The leader's quorum settlement, shared by both vote rounds: batch-verifies the
/// collected shares (randomized linear combination — one batch check instead of `2f`
/// scheme verifications), purges located forgeries so the quorum can re-form from
/// honest votes (returning `None`), and combines the pre-verified quorum. Modeled
/// costs are charged for both steps.
fn batch_combine(
    keys: &SharedKeys,
    collector: &mut crate::instance::ShareCollector,
    digest: &Digest,
    ctx: &mut Ctx<'_>,
) -> Option<CombinedSignature> {
    let (outcome, cost) = keys.provider.verify_shares_batch(collector.shares(), digest);
    charge(ctx, cost);
    if let BatchOutcome::Invalid(bad) = outcome {
        collector.remove_signers(&bad);
        return None;
    }
    let (combined, cost) = keys.provider.combine_preverified(collector.shares(), digest);
    charge(ctx, cost);
    combined.ok()
}

impl LeopardReplica {
    /// Creates a replica with the given configuration and shared key material.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(id: NodeId, config: LeopardConfig, keys: Arc<SharedKeys>) -> Self {
        config
            .validate()
            .unwrap_or_else(|message| panic!("invalid Leopard config: {message}"));
        let payload_size = config.params.payload_size as u32;
        let mut replica = Self {
            id,
            mempool: Mempool::new(ClientId(id.0), payload_size),
            pool: DatablockPool::new(),
            ready: ReadyTracker::new(),
            pipeline: Pipeline::new(config.params.max_parallel_instances),
            replica_instances: BTreeMap::new(),
            checkpoints: CheckpointState::new(),
            retrieval: RetrievalManager::new(),
            datablock_counter: 1,
            own_datablocks: FastMap::default(),
            log: BTreeMap::new(),
            last_executed: SeqNum(0),
            confirmed_requests: 0,
            last_confirmation_at: None,
            highest_confirmed_seen: 0,
            anchored_view: View::initial(),
            stall_guard: StallReason::None,
            stall_guard_since: SimTime(0),
            view_changes: ViewChangeState::new(),
            in_view_change: false,
            view_change_started_at: None,
            prepared: BTreeMap::new(),
            deferred_pre_prepares: Vec::new(),
            pending_confirmations: BTreeMap::new(),
            progress_backoff: 0,
            confirmed_at_last_check: 0,
            state_sync_at: None,
            state_sync_peers: Vec::new(),
            state_sync_view_claims: Vec::new(),
            state_sync_round: 0,
            injection_carry: 0.0,
            view: View::initial(),
            config,
            keys,
        };
        replica.anchor_pipeline_stripe();
        replica
    }

    /// The replica's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The replica's current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// The current leader from this replica's point of view.
    pub fn leader(&self) -> NodeId {
        self.view.leader(self.config.params.n)
    }

    /// True if this replica is the current leader.
    pub fn is_leader(&self) -> bool {
        self.leader() == self.id
    }

    // ------------------------------------------------------------------
    // Multi-proposer schedule (PR 9)
    //
    // Serial numbers are striped round-robin over `p = params.proposers`
    // replicas: stripe `j` of view `v` is proposed by replica
    // `((v mod n) + j) mod n`, and owns exactly the serials `s` with
    // `(s − 1) mod p == j`. Stripe 0 is the classic leader, so `p = 1` is the
    // single-leader protocol, bit for bit. Quorum intersection holds per serial
    // because at most one replica may propose at any serial of any view — the
    // stripes partition the serial space and the schedule is a deterministic
    // function of `(view, n, p)` every honest replica evaluates identically.
    // ------------------------------------------------------------------

    /// Number of concurrent proposers `p`.
    fn proposer_count(&self) -> u64 {
        self.config.params.proposers as u64
    }

    /// The proposer of stripe `j` under `view`'s round-robin rotation.
    fn proposer_of_stripe(view: View, j: u64, n: usize) -> NodeId {
        NodeId((((view.0 % n as u64) + j) % n as u64) as u32)
    }

    /// The proposer that owns serial `seq` in the current view.
    fn proposer_of_seq(&self, seq: SeqNum) -> NodeId {
        let j = Pipeline::stripe_of(seq, self.proposer_count());
        Self::proposer_of_stripe(self.view, j, self.n())
    }

    /// This replica's stripe in `view`'s proposer window, if it holds one.
    fn stripe_in_view(&self, view: View) -> Option<u64> {
        let n = self.n() as u64;
        let base = view.0 % n;
        let offset = (u64::from(self.id.0) + n - base) % n;
        (offset < self.proposer_count()).then_some(offset)
    }

    /// This replica's stripe in the current view, if it is a proposer.
    fn my_stripe(&self) -> Option<u64> {
        self.stripe_in_view(self.view)
    }

    /// True if this replica proposes some stripe of the current view (equals
    /// [`Self::is_leader`] when `proposers = 1`).
    pub fn is_proposer(&self) -> bool {
        self.my_stripe().is_some()
    }

    /// The proposer that Ready acks for `digest` are routed to. Datablocks are
    /// keyed onto stripes by digest bytes so the linking (and the batch-verify /
    /// combine load that follows) spreads evenly; each digest has exactly one
    /// linking proposer per view, which is what keeps a datablock from being
    /// linked twice by two stripes. `p = 1` routes to the leader, exactly as
    /// before.
    fn proposer_for_digest(&self, digest: &Digest) -> NodeId {
        let p = self.proposer_count();
        if p <= 1 {
            return self.leader();
        }
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&digest.as_bytes()[..8]);
        let j = u64::from_le_bytes(prefix) % p;
        Self::proposer_of_stripe(self.view, j, self.n())
    }

    /// Re-anchors the pipeline onto this replica's stripe of the current view
    /// (a no-op for `proposers = 1`, preserving the single-leader schedule).
    fn anchor_pipeline_stripe(&mut self) {
        let p = self.proposer_count();
        if p <= 1 {
            return;
        }
        if let Some(stripe) = self.my_stripe() {
            self.pipeline.set_stripe(stripe, p);
        }
    }

    /// Serial number of the latest executed BFTblock.
    pub fn last_executed(&self) -> SeqNum {
        self.last_executed
    }

    /// Total requests confirmed (executed) by this replica.
    pub fn confirmed_requests(&self) -> u64 {
        self.confirmed_requests
    }

    /// The confirmed BFTblock at `seq`, if it has been added to the log.
    pub fn log_block(&self, seq: SeqNum) -> Option<&Arc<BftBlock>> {
        self.log.get(&seq.0)
    }

    /// Current low watermark (latest stable checkpoint).
    pub fn low_watermark(&self) -> SeqNum {
        self.checkpoints.low_watermark()
    }

    /// The leader-side proposal pipeline (in-flight instances, stall condition).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// This replica's configuration (Byzantine behaviour, timers, protocol parameters).
    pub fn config(&self) -> &LeopardConfig {
        &self.config
    }

    /// Iterates over the confirmed log in serial-number order.
    pub fn log_entries(&self) -> impl Iterator<Item = (SeqNum, &Arc<BftBlock>)> + '_ {
        self.log.iter().map(|(&seq, block)| (SeqNum(seq), block))
    }

    /// The local datablock pool (used by the harness invariant checker to snapshot
    /// retrieval completeness).
    pub fn pool(&self) -> &DatablockPool {
        &self.pool
    }

    /// When this replica last executed a BFTblock, if ever.
    pub fn last_confirmation_at(&self) -> Option<SimTime> {
        self.last_confirmation_at
    }

    /// The guard currently blocking this replica's pipeline, as a first-class value.
    ///
    /// For a proposer this is the first failing `propose()` guard; a non-proposer
    /// only ever reports [`StallReason::ViewChange`] or [`StallReason::None`].
    pub fn current_stall(&self) -> StallReason {
        if self.is_proposer() {
            self.pipeline.stall_reason(
                self.behaviour().silent_as_leader(),
                self.in_view_change,
                self.ready.ready_count(),
                self.checkpoints.high_watermark(self.instance_window()),
            )
        } else if self.in_view_change {
            StallReason::ViewChange
        } else {
            StallReason::None
        }
    }

    /// The checkpoint-window span: `k` serials for a single leader, `k·p` under the
    /// multi-proposer plane (each of the `p` stripes may hold `k` instances in
    /// flight, and the stripes interleave in the serial space).
    fn instance_window(&self) -> usize {
        self.config.params.max_parallel_instances * self.config.params.proposers
    }

    fn quorum(&self) -> usize {
        self.config.params.quorum()
    }

    fn f(&self) -> usize {
        self.config.params.f()
    }

    fn n(&self) -> usize {
        self.config.params.n
    }

    fn behaviour(&self) -> ByzantineBehavior {
        self.config.byzantine
    }

    /// Signs `digest` with this replica's key share, charging the modeled cost.
    fn sign(&self, digest: &Digest, ctx: &mut Ctx<'_>) -> SignatureShare {
        let (share, cost) = self
            .keys
            .provider
            .sign_share(self.keys.keypair(self.id.as_index()), digest);
        charge(ctx, cost);
        share
    }

    /// Verifies a single signature share, charging the modeled cost.
    fn verify_share(&self, share: &SignatureShare, digest: &Digest, ctx: &mut Ctx<'_>) -> bool {
        let (ok, cost) = self.keys.provider.verify_share(share, digest);
        charge(ctx, cost);
        ok
    }

    /// Verifies a combined signature, charging the modeled cost.
    fn verify_combined(
        &self,
        proof: &CombinedSignature,
        digest: &Digest,
        ctx: &mut Ctx<'_>,
    ) -> bool {
        let (ok, cost) = self.keys.provider.verify_combined(proof, digest);
        charge(ctx, cost);
        ok
    }

    // ------------------------------------------------------------------
    // Client stub & datablock generation (Algorithm 1)
    // ------------------------------------------------------------------

    fn inject_workload(&mut self, ctx: &mut Ctx<'_>) {
        let WorkloadMode::OpenLoop { aggregate_rps } = self.config.workload else {
            return;
        };
        if self.is_proposer() {
            // Clients pick non-proposer replicas (µ excludes the proposer window,
            // which is just the leader when `proposers = 1`).
            return;
        }
        let producers = (self.n() - self.config.params.proposers).max(1);
        let per_replica = aggregate_rps as f64 / producers as f64;
        let per_tick = per_replica * WORKLOAD_TICK.as_secs_f64() + self.injection_carry;
        let whole = per_tick.floor() as usize;
        self.injection_carry = per_tick - whole as f64;
        if whole > 0 {
            self.mempool.inject(whole, ctx.now());
        }
    }

    fn generate_datablocks(&mut self, ctx: &mut Ctx<'_>) {
        if self.is_proposer() || self.in_view_change {
            return;
        }
        if let Some(stop) = self.config.workload_stop {
            // Drain window: past the stop offset no new datablocks enter the system,
            // so everything already in flight can land before the run ends.
            if ctx.now().saturating_since(SimTime::ZERO) >= stop {
                return;
            }
        }
        if let WorkloadMode::Saturated { .. } = self.config.workload {
            // Saturated clients always have a full datablock's worth of requests ready.
            self.mempool.inject(self.config.params.datablock_size, ctx.now());
        }
        loop {
            let available = self.mempool.len();
            if available == 0 {
                break;
            }
            let full = available >= self.config.params.datablock_size;
            let requests = self.mempool.take_batch(self.config.params.datablock_size);
            let oldest = ctx.now(); // queueing delay folded into the generation stage
            let datablock = Arc::new(Datablock::new(self.id, self.datablock_counter, requests));
            self.datablock_counter += 1;
            let digest = datablock.digest();
            // Producing the datablock hashes its encoded bytes once.
            charge(ctx, self.keys.provider.model().hash(datablock.wire_size()));
            self.own_datablocks.insert(
                digest,
                DatablockTiming {
                    created_at: ctx.now(),
                    oldest_request_at: oldest,
                    linked_at: None,
                },
            );
            self.pool.insert(datablock.clone());
            ctx.multicast(LeopardMessage::Datablock(datablock));
            if !self.behaviour().withholds_votes() {
                let linker = self.proposer_for_digest(&digest);
                ctx.send(linker, LeopardMessage::Ready { digest });
            }
            if !full {
                // Only one partial datablock per flush.
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Leader: proposing BFTblocks (Algorithm 2, pre-prepare)
    // ------------------------------------------------------------------

    /// Proposes BFTblocks until a pipeline guard blocks (recording that guard) or the
    /// batching policy defers.
    ///
    /// This is **event-driven**: instead of only running on a fixed timer tick, it is
    /// invoked from every event that changes one of its guards — a datablock crossing
    /// the ready threshold ([`Self::handle_ready`]), an instance confirming
    /// ([`Self::handle_commit_vote`]), the watermark advancing
    /// ([`Self::handle_checkpoint_proof`]) and a new view starting
    /// ([`Self::handle_view_change`]).
    ///
    /// Batching policy: an event-driven call (`flush = false`) proposes eagerly only
    /// when a full `τ` batch of ready datablocks is available or the pipeline is idle
    /// (an empty pipeline must never wait — that is the availability-triggered
    /// proposing of FnF-BFT/Raptr). While instances are in flight, partial batches
    /// accumulate so the per-block vote rounds amortise over `τ` links as in the
    /// paper; the `TOKEN_PROPOSE` tick (`flush = true`) bounds how long a partial
    /// batch can wait.
    fn propose(&mut self, ctx: &mut Ctx<'_>, flush: bool) {
        if !self.is_proposer() {
            return;
        }
        // Never extend the serial space from a view this replica did not anchor
        // (see `anchored_view`): without the quorum evidence the pipeline frontier
        // may sit below serials an earlier view notarized under the shifted stripe
        // map, and replicas reset those instances on view entry — a fresh block at
        // such a serial forks the log. Staying mute here costs one view of this
        // stripe's throughput at most: the stall feeds the complaint path and the
        // next view change re-anchors every live proposer.
        if self.view != self.anchored_view {
            return;
        }
        loop {
            let reason = self.pipeline.stall_reason(
                self.behaviour().silent_as_leader(),
                self.in_view_change,
                self.ready.ready_count(),
                self.checkpoints.high_watermark(self.instance_window()),
            );
            if reason != StallReason::None {
                self.record_stall(reason, ctx.now());
                return;
            }
            if !flush
                && self.pipeline.in_flight() > 0
                && self.ready.ready_count() < self.config.params.bftblock_size
            {
                // Work is in flight and the batch is partial: let it fill. Not a
                // stall — the next confirmation or the flush tick picks it up.
                self.record_stall(StallReason::None, ctx.now());
                return;
            }
            let links = self.ready.take_ready(self.config.params.bftblock_size);
            let seq = self.pipeline.take_seq();

            if self.behaviour().equivocates() {
                self.propose_equivocating(seq, links, ctx);
                continue;
            }

            let block = Arc::new(BftBlock::new(self.view, seq, links));
            let digest = block.digest();
            charge(ctx, self.keys.provider.model().hash(block.wire_size()));
            let share = self.sign(&digest, ctx);
            self.pipeline.insert(seq, LeaderInstance::new(block.clone(), ctx.now()));
            ctx.broadcast(LeopardMessage::PrePrepare { block, share });
        }
    }

    /// Fills this proposer's residue class with dummy blocks when the stripe is
    /// idle but other stripes have confirmed past it (Mir-BFT's null blocks).
    ///
    /// Execution is strictly sequential over serial numbers, so with `p > 1` a
    /// stripe with no ready datablocks would otherwise hold every later serial of
    /// the other stripes hostage. Dummies are bounded by the highest confirmation
    /// seen anywhere, so a stripe never runs ahead of real progress; with `p = 1`
    /// there is exactly one stripe and this is dead code (gated below).
    fn fill_idle_stripe(&mut self, ctx: &mut Ctx<'_>) {
        if self.proposer_count() <= 1
            || !self.is_proposer()
            // Dummies extend the serial space just like real proposals — an
            // un-anchored view must not fill either (see `propose`).
            || self.view != self.anchored_view
            || self.in_view_change
            || self.behaviour().silent_as_leader()
            || self.ready.ready_count() > 0
            || self.pipeline.in_flight() > 0
        {
            return;
        }
        let high_watermark = self.checkpoints.high_watermark(self.instance_window());
        while self.pipeline.next_seq().0 <= self.highest_confirmed_seen
            && self.pipeline.next_seq() <= high_watermark
            && self.pipeline.in_flight() < self.config.params.max_parallel_instances
        {
            let seq = self.pipeline.take_seq();
            let block = Arc::new(BftBlock::dummy(self.view, seq));
            let digest = block.digest();
            charge(ctx, self.keys.provider.model().hash(block.wire_size()));
            let share = self.sign(&digest, ctx);
            self.pipeline.insert(seq, LeaderInstance::new(block.clone(), ctx.now()));
            ctx.broadcast(LeopardMessage::PrePrepare { block, share });
        }
    }

    /// Tracks when the currently blocking guard last changed (for progress probes).
    fn record_stall(&mut self, reason: StallReason, now: SimTime) {
        if self.stall_guard != reason {
            self.stall_guard = reason;
            self.stall_guard_since = now;
        }
    }

    /// Byzantine leader: send conflicting blocks with the same serial number to two
    /// halves of the replicas. Safety must hold regardless.
    fn propose_equivocating(&mut self, seq: SeqNum, links: Vec<Digest>, ctx: &mut Ctx<'_>) {
        let block_a = Arc::new(BftBlock::new(self.view, seq, links.clone()));
        let mut reversed = links;
        reversed.reverse();
        // Ensure the digests differ even for a single link by dropping it in block B.
        let block_b = if reversed.len() == 1 {
            Arc::new(BftBlock::new(self.view, seq, Vec::new()))
        } else {
            Arc::new(BftBlock::new(self.view, seq, reversed))
        };
        let share_a = self.sign(&block_a.digest(), ctx);
        let share_b = self.sign(&block_b.digest(), ctx);
        self.pipeline
            .insert(seq, LeaderInstance::new(block_a.clone(), ctx.now()));
        let half = self.n() / 2;
        for index in 0..self.n() {
            let peer = NodeId(index as u32);
            if peer == self.id {
                continue;
            }
            let message = if index < half {
                LeopardMessage::PrePrepare {
                    block: block_a.clone(),
                    share: share_a,
                }
            } else {
                LeopardMessage::PrePrepare {
                    block: block_b.clone(),
                    share: share_b,
                }
            };
            ctx.send(peer, message);
        }
        ctx.send(
            self.id,
            LeopardMessage::PrePrepare {
                block: block_a,
                share: share_a,
            },
        );
    }

    // ------------------------------------------------------------------
    // Agreement: replica side (Algorithm 2)
    // ------------------------------------------------------------------

    fn handle_datablock(&mut self, from: NodeId, datablock: Arc<Datablock>, ctx: &mut Ctx<'_>) {
        if datablock.id.producer != from {
            // A replica may only disseminate its own datablocks.
            return;
        }
        // Receiving a datablock re-hashes it to validate the digest it will be linked
        // and acknowledged under (the real hash is memoized on the shared envelope, but
        // every replica pays the modeled cost — in a deployment each would hash).
        charge(ctx, self.keys.provider.model().hash(datablock.wire_size()));
        let Some(digest) = self.pool.insert(datablock) else {
            return; // duplicate counter
        };
        if !self.behaviour().withholds_votes() {
            let linker = self.proposer_for_digest(&digest);
            ctx.send(linker, LeopardMessage::Ready { digest });
        }
        // A pending retrieval for this datablock is no longer needed.
        let waiting = self.retrieval.cancel(&digest);
        for seq in waiting {
            self.resolve_missing_link(seq, digest, ctx);
        }
    }

    fn handle_ready(&mut self, from: NodeId, digest: Digest, ctx: &mut Ctx<'_>) {
        // Each digest is routed to exactly one proposer (`proposer_for_digest`), so no
        // two stripes can ever link the same datablock: a Ready that lands on any other
        // replica is dropped, which also keeps `p = 1` identical to the leader-only path.
        if self.proposer_for_digest(&digest) != self.id {
            return;
        }
        // Only datablocks the proposer itself stores may become ready (it must be able
        // to serve retrieval queries for everything it links).
        if !self.pool.contains(&digest) {
            return;
        }
        if self.ready.record_ack(digest, from, self.quorum()) {
            // Event-driven pipeline: a datablock just crossed the `2f+1` threshold, so
            // the `AwaitingReady` guard may have cleared.
            self.propose(ctx, false);
        }
    }

    fn handle_pre_prepare(
        &mut self,
        from: NodeId,
        block: Arc<BftBlock>,
        share: leopard_crypto::threshold::SignatureShare,
        ctx: &mut Ctx<'_>,
    ) {
        // VRFBFTBLOCK checks (Algorithm 2, line 37).
        if block.id.view.0 > self.view.0 {
            // The proposal is from a view this replica has not entered yet: the new
            // leader's re-proposals race the NewView that announces the view. Hold
            // the proposal and replay it from `enter_view` — leader identity and the
            // share are validated then, against the entered view.
            if self.deferred_pre_prepares.len() < DEFERRED_PRE_PREPARE_CAP {
                self.deferred_pre_prepares.push((from, block, share));
            }
            return;
        }
        if block.id.view != self.view || self.in_view_change {
            return;
        }
        if from != self.proposer_of_seq(block.id.seq) {
            // Under the multi-proposer plane each serial has exactly one legitimate
            // proposer per view (the stripe owner); for `proposers = 1` this is the
            // classic `from != leader` check.
            return;
        }
        let digest = block.digest();
        charge(ctx, self.keys.provider.model().hash(block.wire_size()));
        if share.signer != from.signer_index() || !self.verify_share(&share, &digest, ctx) {
            return;
        }
        let seq = block.id.seq;
        let lw = self.checkpoints.low_watermark().0;
        let window = self.instance_window() as u64;
        if seq.0 <= lw || seq.0 > lw + window {
            return;
        }
        let instance = self.replica_instances.entry(seq.0).or_default();
        if let Some(existing) = instance.block_digest {
            if existing != digest {
                // A later view legitimately re-proposes a block this replica already
                // confirmed: same links, new view stamp, hence a new digest. Endorse
                // the identical-content twin with a prepare vote (without touching the
                // confirmed state) — replicas that missed the original confirmation
                // can only assemble a quorum for this serial number if the replicas
                // that *did* confirm it keep voting. Anything else — a conflicting
                // block in the same view, or different content — is equivocation and
                // is refused.
                let same_content = instance.is_confirmed()
                    && instance
                        .block
                        .as_ref()
                        .map_or(false, |held| held.links == block.links && held.dummy == block.dummy);
                if !same_content || instance.endorsed_repropose == Some(digest) {
                    return;
                }
                instance.endorsed_repropose = Some(digest);
                if self.behaviour().withholds_votes() {
                    return;
                }
                let share = self.sign(&digest, ctx);
                ctx.send(
                    from,
                    LeopardMessage::PrepareVote {
                        seq,
                        block_digest: digest,
                        share,
                    },
                );
                return;
            }
        }
        instance.block = Some(block.clone());
        instance.block_digest = Some(digest);
        if instance.received_at.is_none() {
            instance.received_at = Some(ctx.now());
        }
        if instance.is_confirmed() {
            // The instance confirmed while block-less (notarization then proof arrived
            // ahead of the proposal). The digest equality above bound this block to the
            // confirmed notarization; log it and resume in-order execution — no votes
            // are owed for an already-confirmed instance.
            self.log.insert(seq.0, block);
            self.try_execute(ctx);
            return;
        }

        // Record the link time of our own datablocks (latency breakdown).
        for link in &block.links {
            if let Some(timing) = self.own_datablocks.get_mut(link) {
                if timing.linked_at.is_none() {
                    timing.linked_at = Some(ctx.now());
                }
            }
        }

        // Check the availability of every linked datablock.
        let missing: Vec<Digest> = block
            .links
            .iter()
            .filter(|link| !self.pool.contains(link))
            .copied()
            .collect();
        if !missing.is_empty() {
            let instance = self.replica_instances.get_mut(&seq.0).expect("just inserted");
            for link in missing {
                instance.missing_links.insert(link);
                self.retrieval.note_missing(link, seq, ctx.now());
            }
            return;
        }
        self.cast_prepare_vote(seq, ctx);
        // The block may have arrived after its notarization (reordered delivery, or a
        // partition that dropped the PrePrepare): the commit vote waits for the block.
        self.maybe_commit_vote(seq, ctx);
    }

    fn cast_prepare_vote(&mut self, seq: SeqNum, ctx: &mut Ctx<'_>) {
        if self.behaviour().withholds_votes() {
            return;
        }
        // PBFT participation rule: a replica that has complained stops voting in the
        // abandoned view. Its Timeout/ViewChange evidence snapshot must dominate every
        // vote it ever cast — a vote slipped in *after* the complaint could complete a
        // quorum whose existence the new leader's evidence cannot see, letting a later
        // view confirm different content at the same serial number (a fork).
        if self.in_view_change {
            return;
        }
        let proposer = self.proposer_of_seq(seq);
        let Some(instance) = self.replica_instances.get_mut(&seq.0) else {
            return;
        };
        if instance.prepare_voted || !instance.links_complete() {
            return;
        }
        let Some(digest) = instance.block_digest else {
            return;
        };
        instance.prepare_voted = true;
        let (share, cost) = self
            .keys
            .provider
            .sign_share(self.keys.keypair(self.id.as_index()), &digest);
        charge(ctx, cost);
        ctx.send(
            proposer,
            LeopardMessage::PrepareVote {
                seq,
                block_digest: digest,
                share,
            },
        );
    }

    fn resolve_missing_link(&mut self, seq: SeqNum, digest: Digest, ctx: &mut Ctx<'_>) {
        let Some(instance) = self.replica_instances.get_mut(&seq.0) else {
            return;
        };
        instance.missing_links.remove(&digest);
        if instance.links_complete() && !instance.prepare_voted {
            self.cast_prepare_vote(seq, ctx);
            self.maybe_commit_vote(seq, ctx);
        }
        // A confirmed block may have been waiting for this datablock to execute.
        self.try_execute(ctx);
    }

    fn notarization_digest(seq: SeqNum, block_digest: &Digest, proof: &CombinedSignature) -> Digest {
        hash_parts([
            b"notarize".as_slice(),
            &seq.0.to_le_bytes(),
            block_digest.as_bytes(),
            &proof.value.value().to_le_bytes(),
        ])
    }

    fn handle_prepare_vote(
        &mut self,
        from: NodeId,
        seq: SeqNum,
        block_digest: Digest,
        share: leopard_crypto::threshold::SignatureShare,
        ctx: &mut Ctx<'_>,
    ) {
        if self.proposer_of_seq(seq) != self.id {
            return;
        }
        // Only the signer-identity check happens per vote; the share values are
        // verified in one batch when the quorum completes (randomized linear
        // combination — the amortisation that keeps the leader's sequential CPU work
        // per round at one batch check instead of `2f` scheme verifications).
        if share.signer != from.signer_index() {
            return;
        }
        let quorum = self.quorum();
        let Some(instance) = self.pipeline.get_mut(seq) else {
            return;
        };
        if instance.block_digest != block_digest || instance.notarization.is_some() {
            return;
        }
        if instance.prepares.add(share) < quorum {
            return;
        }
        let Some(proof) = batch_combine(&self.keys, &mut instance.prepares, &block_digest, ctx)
        else {
            return;
        };
        instance.notarization = Some(proof);
        let digest = Self::notarization_digest(seq, &block_digest, &proof);
        instance.notarization_digest = Some(digest);
        ctx.broadcast(LeopardMessage::NotarizationProof {
            seq,
            block_digest,
            proof,
        });
    }

    fn handle_notarization(
        &mut self,
        seq: SeqNum,
        block_digest: Digest,
        proof: CombinedSignature,
        ctx: &mut Ctx<'_>,
    ) {
        if !self.verify_combined(&proof, &block_digest, ctx) {
            return;
        }
        let lw = self.checkpoints.low_watermark().0;
        if seq.0 <= lw {
            return;
        }
        let withholds = self.behaviour().withholds_votes();
        let in_view_change = self.in_view_change;
        let instance = self.replica_instances.entry(seq.0).or_default();
        if instance.block_digest.is_some() && instance.block_digest != Some(block_digest) {
            // Notarization of an endorsed re-proposal — the same content this replica
            // already confirmed, re-stamped by a later view. Cast the commit vote for
            // the twin without touching the confirmed state (see `endorsed_repropose`).
            if instance.endorsed_repropose == Some(block_digest) && !withholds && !in_view_change {
                instance.endorsed_repropose = None;
                let notarization_digest = Self::notarization_digest(seq, &block_digest, &proof);
                let (share, cost) = self
                    .keys
                    .provider
                    .sign_share(self.keys.keypair(self.id.as_index()), &notarization_digest);
                charge(ctx, cost);
                let proposer = self.proposer_of_seq(seq);
                ctx.send(
                    proposer,
                    LeopardMessage::CommitVote {
                        seq,
                        proof_digest: notarization_digest,
                        share,
                    },
                );
            }
            return;
        }
        if instance.state < BlockState::Notarized {
            instance.state = BlockState::Notarized;
        }
        instance.block_digest.get_or_insert(block_digest);
        instance.notarization = Some(proof);
        let notarization_digest = Self::notarization_digest(seq, &block_digest, &proof);
        instance.notarization_digest = Some(notarization_digest);
        // A confirmation proof may have raced ahead of this notarization; now that
        // the binding digest is known, a held proof that matches can be applied.
        if self
            .pending_confirmations
            .get(&seq.0)
            .map_or(false, |(held, _)| *held == notarization_digest)
        {
            let (held_digest, held_proof) =
                self.pending_confirmations.remove(&seq.0).expect("just checked");
            self.handle_confirmation(seq, held_digest, held_proof, ctx);
        }
        self.stash_prepared(seq);
        self.maybe_commit_vote(seq, ctx);
    }

    /// Casts the second-round (commit) vote for `seq` once every precondition holds:
    /// a notarization is present, the replica actually *holds the block*, and it has
    /// not commit-voted yet. Requiring the block before the commit
    /// vote keeps the prepared set sound: every member of a confirmation's commit
    /// quorum can carry the notarized block through a view change, so a possibly-
    /// confirmed block can never be replaced by different content in a later view. A
    /// replica that learns the notarization before the block (reordered delivery, or
    /// a partition that dropped the PrePrepare) votes when the block arrives.
    fn maybe_commit_vote(&mut self, seq: SeqNum, ctx: &mut Ctx<'_>) {
        // Wherever a commit vote could fire, the evidence may have just become
        // stashable too (block and notarization both present).
        self.stash_prepared(seq);
        if self.behaviour().withholds_votes() {
            return;
        }
        // Same participation rule as `cast_prepare_vote`: no votes after complaining.
        // (The stash above still happens — evidence collection is passive and only
        // strengthens future view changes.)
        if self.in_view_change {
            return;
        }
        let proposer = self.proposer_of_seq(seq);
        let Some(instance) = self.replica_instances.get_mut(&seq.0) else {
            return;
        };
        if instance.commit_voted || instance.block.is_none() {
            return;
        }
        let Some(notarization_digest) = instance.notarization_digest else {
            return;
        };
        instance.commit_voted = true;
        let (share, cost) = self
            .keys
            .provider
            .sign_share(self.keys.keypair(self.id.as_index()), &notarization_digest);
        charge(ctx, cost);
        ctx.send(
            proposer,
            LeopardMessage::CommitVote {
                seq,
                proof_digest: notarization_digest,
                share,
            },
        );
    }

    fn handle_commit_vote(
        &mut self,
        from: NodeId,
        seq: SeqNum,
        proof_digest: Digest,
        share: leopard_crypto::threshold::SignatureShare,
        ctx: &mut Ctx<'_>,
    ) {
        if self.proposer_of_seq(seq) != self.id {
            return;
        }
        if share.signer != from.signer_index() {
            return;
        }
        let quorum = self.quorum();
        let Some(instance) = self.pipeline.get_mut(seq) else {
            return;
        };
        if instance.notarization_digest != Some(proof_digest) || instance.confirmation.is_some() {
            return;
        }
        if instance.commits.add(share) < quorum {
            return;
        }
        let Some(proof) = batch_combine(&self.keys, &mut instance.commits, &proof_digest, ctx)
        else {
            return;
        };
        self.pipeline.record_confirmation(seq, proof);
        self.highest_confirmed_seen = self.highest_confirmed_seen.max(seq.0);
        ctx.broadcast(LeopardMessage::ConfirmationProof {
            seq,
            proof_digest,
            proof,
        });
        // Event-driven pipeline: the confirmation freed an in-flight slot, so the
        // `InstancesFull` guard may have cleared.
        self.propose(ctx, false);
    }

    fn handle_confirmation(
        &mut self,
        seq: SeqNum,
        proof_digest: Digest,
        proof: CombinedSignature,
        ctx: &mut Ctx<'_>,
    ) {
        if !self.verify_combined(&proof, &proof_digest, ctx) {
            return;
        }
        let lw = self.checkpoints.low_watermark().0;
        if seq.0 <= lw && self.log.contains_key(&seq.0) {
            return;
        }
        let instance = self.replica_instances.entry(seq.0).or_default();
        if instance.is_confirmed() {
            return;
        }
        match instance.notarization_digest {
            Some(expected) if expected == proof_digest => {}
            Some(_) => return,
            // No notarization yet: the proof cannot be bound to a block (see
            // `pending_confirmations`). Hold it; `handle_notarization` replays it.
            None => {
                self.pending_confirmations.insert(seq.0, (proof_digest, proof));
                return;
            }
        }
        self.pending_confirmations.remove(&seq.0);
        instance.state = BlockState::Confirmed;
        instance.confirmation = Some(proof);
        self.highest_confirmed_seen = self.highest_confirmed_seen.max(seq.0);
        if let Some(block) = instance.block.clone() {
            self.log.insert(seq.0, block);
        }
        self.try_execute(ctx);
    }

    // ------------------------------------------------------------------
    // Execution, acknowledgement, checkpoints
    // ------------------------------------------------------------------

    fn try_execute(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let next = SeqNum(self.last_executed.0 + 1);
            let Some(block) = self.log.get(&next.0).cloned() else {
                break;
            };
            // Every linked datablock must be locally available before execution.
            let mut missing = Vec::new();
            for link in &block.links {
                if !self.pool.contains(link) {
                    missing.push(*link);
                }
            }
            if !missing.is_empty() {
                for link in missing {
                    if self.retrieval.note_missing(link, next, ctx.now()) {
                        // The retrieval timer is periodic; nothing else to arm here.
                    }
                }
                break;
            }

            let mut request_count = 0u64;
            let mut payload_bytes = 0u64;
            for link in &block.links {
                let datablock = self.pool.get(link).expect("checked above").clone();
                request_count += datablock.len() as u64;
                payload_bytes += datablock.payload_bytes() as u64;
                // Acknowledge our own requests (client-side latency measurement).
                if datablock.id.producer == self.id {
                    for request in &datablock.requests {
                        if let Some(latency) = self.mempool.acknowledge(&request.id, ctx.now()) {
                            ctx.observe(ObservationKind::RequestLatency { nanos: latency });
                        }
                    }
                }
                // Latency breakdown for datablocks we produced.
                if let Some(timing) = self.own_datablocks.remove(link) {
                    let generation = timing
                        .created_at
                        .saturating_since(timing.oldest_request_at)
                        .as_nanos();
                    let linked = timing.linked_at.unwrap_or(ctx.now());
                    let dissemination = linked.saturating_since(timing.created_at).as_nanos();
                    let agreement = ctx.now().saturating_since(linked).as_nanos();
                    ctx.observe(ObservationKind::Custom {
                        label: "latency_generation",
                        value: generation,
                    });
                    ctx.observe(ObservationKind::Custom {
                        label: "latency_dissemination",
                        value: dissemination,
                    });
                    ctx.observe(ObservationKind::Custom {
                        label: "latency_agreement",
                        value: agreement,
                    });
                }
            }
            self.confirmed_requests += request_count;
            if request_count > 0 {
                ctx.observe(ObservationKind::RequestsConfirmed {
                    count: request_count,
                    payload_bytes,
                });
            }
            ctx.observe(ObservationKind::BlockCommitted {
                sequence: next.0,
                requests: request_count,
            });
            self.last_executed = next;
            self.last_confirmation_at = Some(ctx.now());

            // Checkpoint (Algorithm 4).
            if CheckpointState::is_checkpoint_height(next, self.config.checkpoint_interval)
                && !self.behaviour().withholds_votes()
            {
                // An equivocating checkpointer claims a divergent execution state. The
                // share itself is properly signed (over the divergent digest), so it
                // passes the leader's share verification — it must be the per-state
                // collection buckets that keep it away from the honest quorum.
                let state_digest = if self.behaviour().equivocates_checkpoints() {
                    hash_parts([b"equivocated-state".as_slice(), &next.0.to_le_bytes()])
                } else {
                    hash_parts([b"state".as_slice(), &next.0.to_le_bytes()])
                };
                let digest = checkpoint_digest(next, &state_digest);
                let share = self.sign(&digest, ctx);
                ctx.send(
                    self.leader(),
                    LeopardMessage::Checkpoint {
                        seq: next,
                        state_digest,
                        share,
                    },
                );
            }
        }
    }

    fn handle_checkpoint_share(
        &mut self,
        from: NodeId,
        seq: SeqNum,
        state_digest: Digest,
        share: leopard_crypto::threshold::SignatureShare,
        ctx: &mut Ctx<'_>,
    ) {
        if !self.is_leader() {
            return;
        }
        let digest = checkpoint_digest(seq, &state_digest);
        // Checkpoints are rare (one per k/2 blocks), so shares are verified on arrival
        // rather than batched; the combine still skips re-verification.
        if share.signer != from.signer_index() || !self.verify_share(&share, &digest, ctx) {
            return;
        }
        if let Some(shares) = self
            .checkpoints
            .record_share(seq, state_digest, share, self.quorum())
        {
            let (combined, cost) = self.keys.provider.combine_preverified(&shares, &digest);
            charge(ctx, cost);
            if let Ok(proof) = combined {
                ctx.broadcast(LeopardMessage::CheckpointProof {
                    seq,
                    state_digest,
                    proof,
                });
            }
        }
    }

    fn handle_checkpoint_proof(
        &mut self,
        seq: SeqNum,
        state_digest: Digest,
        proof: CombinedSignature,
        ctx: &mut Ctx<'_>,
    ) {
        let digest = checkpoint_digest(seq, &state_digest);
        if !self.verify_combined(&proof, &digest, ctx) {
            return;
        }
        if !self.checkpoints.advance_proven(seq, state_digest, proof) {
            return;
        }
        // A stable checkpoint is quorum evidence that everything at or below it
        // confirmed, even if this replica never saw the individual proofs.
        self.highest_confirmed_seen = self.highest_confirmed_seen.max(seq.0);
        // Garbage collection: drop instances, log entries and executed datablocks at or
        // below the new watermark.
        let watermark = seq.0;
        let mut executed_links = Vec::new();
        for (&s, block) in self.log.range(..=watermark) {
            if s <= self.last_executed.0 {
                executed_links.extend(block.links.iter().copied());
            }
        }
        self.pool.prune(executed_links.iter().copied());
        self.retrieval.prune(executed_links.iter().copied());
        self.ready.prune(executed_links);
        self.pipeline.prune_through(SeqNum(watermark));
        self.replica_instances.retain(|&s, _| s > watermark);
        self.prepared.retain(|&s, _| s > watermark);
        self.pending_confirmations.retain(|&s, _| s > watermark);
        // The system checkpointed past this replica's execution point: it missed
        // confirmations (partition, crash) and can never replay them — the blocks
        // below the watermark are being garbage-collected cluster-wide right now
        // (including any instance this GC just dropped while its datablocks were
        // still in retrieval). The quorum-signed proof summarises everything below
        // the watermark, so jump execution to it directly.
        self.jump_to_stable_watermark(ctx);
        self.try_execute(ctx);
        // Event-driven pipeline: the watermark advance may have cleared the
        // `WatermarkFull` guard.
        self.propose(ctx, false);
    }

    // ------------------------------------------------------------------
    // State transfer (catch-up after a crash-restart or partition heal)
    // ------------------------------------------------------------------

    /// Asks `f + 1` peers (guaranteeing at least one honest responder) for everything
    /// confirmed past this replica's execution point. The responder set rotates one
    /// position per round, so a recovery-plane adversary that happens to sit among the
    /// first `f + 1` ids (a silent or lying state responder) cannot starve every
    /// retry of its honest majority forever.
    fn begin_state_sync(&mut self, ctx: &mut Ctx<'_>) {
        self.state_sync_at = Some(ctx.now());
        self.state_sync_peers.clear();
        self.state_sync_view_claims.clear();
        let request = LeopardMessage::StateRequest {
            last_executed: self.last_executed,
        };
        let n = self.n();
        let offset = (self.state_sync_round as usize) % n;
        self.state_sync_round += 1;
        let mut remaining = self.f() + 1;
        for index in 0..n {
            let peer = NodeId(((index + offset) % n) as u32);
            if peer == self.id {
                continue;
            }
            self.state_sync_peers.push(peer);
            ctx.send(peer, request.clone());
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
    }

    /// Starts a state sync unless one is already in flight (cooldown of one progress
    /// timeout) or a view change will re-synchronise the replica anyway.
    fn maybe_state_sync(&mut self, ctx: &mut Ctx<'_>) {
        if self.in_view_change {
            return;
        }
        if let Some(at) = self.state_sync_at {
            if ctx.now().saturating_since(at) < self.config.progress_timeout {
                return;
            }
        }
        self.begin_state_sync(ctx);
    }

    /// Jumps execution to the stable checkpoint watermark when a quorum-signed proof
    /// covers sequence numbers this replica never executed. Everything at or below a
    /// stable checkpoint is summarised by its quorum-signed state digest, and the
    /// blocks (and their datablocks) below the cluster-wide watermark are
    /// garbage-collected at the peers, so replaying them is impossible anyway.
    /// Retrievals whose only waiters sit below the watermark are abandoned with it —
    /// their datablocks are pruned cluster-wide and no longer gate execution.
    fn jump_to_stable_watermark(&mut self, ctx: &mut Ctx<'_>) {
        if self.checkpoints.stable_proof().is_none() {
            return;
        }
        let watermark = self.checkpoints.low_watermark();
        if watermark <= self.last_executed {
            return;
        }
        self.last_executed = watermark;
        self.last_confirmation_at = Some(ctx.now());
        self.replica_instances.retain(|&s, _| s > watermark.0);
        self.prepared.retain(|&s, _| s > watermark.0);
        self.pending_confirmations.retain(|&s, _| s > watermark.0);
        self.pipeline.prune_through(watermark);
        self.retrieval.abandon_waiting_through(watermark);
    }

    fn handle_state_request(&mut self, from: NodeId, last_executed: SeqNum, ctx: &mut Ctx<'_>) {
        if self.behaviour().ignores_queries() || self.behaviour().silent_in_state_transfer() {
            return;
        }
        let (checkpoint_seq, mut checkpoint_state, checkpoint_proof) =
            match self.checkpoints.stable_proof() {
                Some((state, proof)) => (self.checkpoints.low_watermark(), *state, Some(*proof)),
                None => (
                    SeqNum(0),
                    hash_parts([b"state".as_slice(), &0u64.to_le_bytes()]),
                    None,
                ),
            };
        let mut entries = Vec::new();
        for (&seq, instance) in &self.replica_instances {
            if seq <= last_executed.0 || !instance.is_confirmed() {
                continue;
            }
            // Both proofs are needed for the requester to accept the block without
            // having voted; an entry missing either is skipped (another responder or
            // the live protocol will cover it).
            if let (Some(block), Some(notarization), Some(confirmation)) =
                (&instance.block, instance.notarization, instance.confirmation)
            {
                entries.push(ConfirmedEntry {
                    block: block.clone(),
                    notarization,
                    confirmation,
                });
            }
        }
        let mut view = self.view;
        if self.behaviour().lies_in_state_transfer() {
            // Every lie is detectable by an honest verifier: the checkpoint proof is a
            // genuine signature but over a different state digest than the one claimed;
            // each entry's notarization and confirmation are swapped (valid signatures
            // over the wrong statements); and the view claim is wildly inflated, which
            // the requester must refuse to adopt without f+1 corroborating responders.
            checkpoint_state =
                hash_parts([b"forged-state".as_slice(), &checkpoint_seq.0.to_le_bytes()]);
            for entry in &mut entries {
                std::mem::swap(&mut entry.notarization, &mut entry.confirmation);
            }
            view = View(self.view.0 + 64);
        }
        ctx.send(
            from,
            LeopardMessage::StateResponse {
                view,
                checkpoint_seq,
                checkpoint_state,
                checkpoint_proof,
                entries,
            },
        );
    }

    fn handle_state_response(
        &mut self,
        from: NodeId,
        view: View,
        checkpoint_seq: SeqNum,
        checkpoint_state: Digest,
        checkpoint_proof: Option<CombinedSignature>,
        entries: Vec<ConfirmedEntry>,
        ctx: &mut Ctx<'_>,
    ) {
        // Only solicited responses are processed: a sync round must be in flight and
        // the sender must be one of the peers that round actually asked. Anything else
        // is an unsolicited push from an arbitrary (possibly Byzantine) replica.
        if self.state_sync_at.is_none() || !self.state_sync_peers.contains(&from) {
            return;
        }
        // Adopt the responder's stable checkpoint if its proof verifies.
        if let Some(proof) = checkpoint_proof {
            let digest = checkpoint_digest(checkpoint_seq, &checkpoint_state);
            if self.verify_combined(&proof, &digest, ctx) {
                self.checkpoints.advance_proven(checkpoint_seq, checkpoint_state, proof);
                self.highest_confirmed_seen = self.highest_confirmed_seen.max(checkpoint_seq.0);
            }
        }
        // Jump execution to the stable watermark — whether it came from this response
        // or from a `CheckpointProof` multicast that raced ahead of it.
        self.jump_to_stable_watermark(ctx);
        for entry in entries {
            self.install_confirmed_entry(entry, ctx);
        }
        // Rejoin a view this replica missed while down — but never on the word of a
        // single responder. View claims are unsigned metadata, so a lying responder
        // could inflate one and wedge this replica in a view nobody else is in (it
        // would neither vote nor complain usefully until the next genuine view
        // change). Instead, adopt the highest view that all f+1 responders of this
        // sync round corroborate: at least one of them is honest, so the adopted view
        // is at most one an honest replica has genuinely entered.
        if self.state_sync_view_claims.iter().all(|(peer, _)| *peer != from) {
            self.state_sync_view_claims.push((from, view.0));
        }
        let needed = self.f() + 1;
        if self.state_sync_view_claims.len() >= needed {
            let mut claims: Vec<u64> =
                self.state_sync_view_claims.iter().map(|&(_, v)| v).collect();
            claims.sort_unstable_by(|a, b| b.cmp(a));
            let corroborated = claims[needed - 1];
            if corroborated > self.view.0 {
                self.enter_view(View(corroborated), ctx);
            }
        }
        self.try_execute(ctx);
    }

    /// Installs one confirmed block received via state transfer, after verifying its
    /// notarization and confirmation proofs.
    fn install_confirmed_entry(&mut self, entry: ConfirmedEntry, ctx: &mut Ctx<'_>) {
        let seq = entry.block.id.seq;
        if seq.0 <= self.last_executed.0 || seq <= self.checkpoints.low_watermark() {
            return;
        }
        let block_digest = entry.block.digest();
        charge(ctx, self.keys.provider.model().hash(entry.block.wire_size()));
        if !self.verify_combined(&entry.notarization, &block_digest, ctx) {
            return;
        }
        let notarization_digest = Self::notarization_digest(seq, &block_digest, &entry.notarization);
        if !self.verify_combined(&entry.confirmation, &notarization_digest, ctx) {
            return;
        }
        let instance = self.replica_instances.entry(seq.0).or_default();
        // An instance that confirmed block-less (the proof arrived but the PrePrepare
        // was lost to a crash or partition) still needs the entry — the block is
        // exactly what state transfer exists to deliver. Only a fully-populated
        // confirmed instance has nothing to gain.
        if instance.is_confirmed() && instance.block.is_some() {
            return;
        }
        instance.block = Some(entry.block.clone());
        instance.block_digest = Some(block_digest);
        instance.state = BlockState::Confirmed;
        self.highest_confirmed_seen = self.highest_confirmed_seen.max(seq.0);
        instance.notarization = Some(entry.notarization);
        instance.notarization_digest = Some(notarization_digest);
        instance.confirmation = Some(entry.confirmation);
        if instance.received_at.is_none() {
            instance.received_at = Some(ctx.now());
        }
        self.log.insert(seq.0, entry.block.clone());
        // Any linked datablock this replica does not hold is fetched through the
        // regular retrieval plane (Algorithm 3) before execution.
        for link in &entry.block.links {
            if !self.pool.contains(link) {
                self.retrieval.note_missing(*link, seq, ctx.now());
            }
        }
    }

    // ------------------------------------------------------------------
    // Retrieval (Algorithm 3)
    // ------------------------------------------------------------------

    fn handle_query(&mut self, from: NodeId, digests: Vec<Digest>, ctx: &mut Ctx<'_>) {
        if self.behaviour().ignores_queries() {
            return;
        }
        let (f, n) = (self.f(), self.n());
        for digest in digests {
            let Some(datablock) = self.pool.get(&digest).cloned() else {
                continue;
            };
            if let Some(response) =
                self.retrieval
                    .encode_response(&datablock, self.id, f, n, &self.keys.provider)
            {
                charge(ctx, response.cost);
                ctx.send(
                    from,
                    LeopardMessage::QueryResponse {
                        digest,
                        root: response.root,
                        shard_index: response.shard_index,
                        payload: response.payload,
                        payload_len: response.payload_len,
                    },
                );
            }
        }
    }

    fn handle_query_response(
        &mut self,
        digest: Digest,
        root: Digest,
        shard_index: u32,
        payload: RetrievalPayload,
        payload_len: u64,
        ctx: &mut Ctx<'_>,
    ) {
        let (f, n) = (self.f(), self.n());
        let (outcome, cost) = self.retrieval.add_chunk(
            digest,
            root,
            shard_index,
            payload,
            payload_len,
            f,
            n,
            ctx.now(),
            &self.keys.provider,
        );
        charge(ctx, cost);
        if let ChunkOutcome::Recovered {
            datablock,
            waiting,
            elapsed_nanos,
            received_bytes,
        } = outcome
        {
            ctx.observe(ObservationKind::RetrievalCompleted {
                nanos: elapsed_nanos,
                received_bytes,
            });
            if self.pool.insert(datablock).is_some() && !self.behaviour().withholds_votes() {
                let linker = self.proposer_for_digest(&digest);
                ctx.send(linker, LeopardMessage::Ready { digest });
            }
            for seq in waiting {
                self.resolve_missing_link(seq, digest, ctx);
            }
        }
    }

    fn fire_retrieval_timer(&mut self, ctx: &mut Ctx<'_>) {
        let digests = self
            .retrieval
            .digests_to_query(ctx.now(), self.config.retrieval_timeout);
        if !digests.is_empty() {
            ctx.multicast(LeopardMessage::Query { digests });
        }
    }

    // ------------------------------------------------------------------
    // View-change (Appendix A)
    // ------------------------------------------------------------------

    /// Records `seq`'s notarized block + proof in the prepared set, the evidence this
    /// replica's future view-change messages carry even after [`Self::enter_view`]
    /// resets the live instance (garbage-collected once a quorum checkpoint covers it).
    fn stash_prepared(&mut self, seq: SeqNum) {
        if seq <= self.checkpoints.low_watermark() {
            return;
        }
        if let Some(instance) = self.replica_instances.get(&seq.0) {
            if instance.state >= BlockState::Notarized {
                if let (Some(block), Some(proof)) = (&instance.block, instance.notarization) {
                    self.prepared.insert(
                        seq.0,
                        NotarizedEntry {
                            block: block.clone(),
                            proof,
                        },
                    );
                }
            }
        }
    }

    /// The progress timeout with the current view-change back-off applied.
    fn current_progress_timeout(&self) -> SimDuration {
        self.config
            .progress_timeout
            .saturating_mul(1u64 << self.progress_backoff.min(3))
    }

    fn outstanding_work(&self) -> bool {
        // A confirmed instance whose block never arrived still owes work: execution
        // is stuck at it, and only a state sync can fill it. Without counting it the
        // replica believes it is idle and never repairs the gap.
        self.mempool.outstanding() > 0
            || self
                .replica_instances
                .values()
                .any(|instance| !instance.is_confirmed() || instance.block.is_none())
    }

    fn fire_progress_timer(&mut self, ctx: &mut Ctx<'_>) {
        let progressed = self.confirmed_requests > self.confirmed_at_last_check
            || self.last_executed.0 > 0 && self.confirmed_requests == self.confirmed_at_last_check && !self.outstanding_work();
        let stalled = !progressed && self.outstanding_work();
        self.confirmed_at_last_check = self.confirmed_requests;
        if progressed {
            self.progress_backoff = 0;
            return;
        }
        if self.in_view_change {
            // The view change itself stalled: the incoming leader never produced a
            // NewView (crashed or Byzantine). Give it one full (backed-off) timeout,
            // then advance locally and complain in the next view so the cluster can
            // rotate past a run of bad leaders.
            let waited = self
                .view_change_started_at
                .map_or(SimDuration::ZERO, |started| ctx.now().saturating_since(started));
            if waited >= self.current_progress_timeout() {
                let next = self.view.next();
                self.enter_view(next, ctx);
                self.complain(ctx);
            }
            return;
        }
        if stalled {
            // A stall caused by an execution gap the replica can repair on its own is
            // not the leader's fault: the instance at the gap already confirmed, but
            // this replica never received the block (the PrePrepare was lost to a
            // partition or a crash window, and nobody re-sends PrePrepares). A view
            // change cannot fill it — confirmed instances are not re-proposed, and the
            // endorsement path needs the held block — so fetch the confirmed entry
            // from peers instead of dragging the whole cluster through a view change.
            let gap = self.last_executed.0 + 1;
            let confirmed_blockless = self
                .replica_instances
                .get(&gap)
                .map_or(false, |instance| instance.is_confirmed() && instance.block.is_none());
            if confirmed_blockless {
                self.maybe_state_sync(ctx);
                return;
            }
            // The cluster confirmed serials past this replica's execution gap, but the
            // gap's own agreement messages never arrived — PrePrepare, notarization and
            // confirmation were all lost to a partition or crash window, and none are
            // ever re-sent. With one proposer the leader's region is every replica's
            // region-of-interest, so a severed minority always took the whole cluster
            // (and a view change) with it; with striped proposers a minority region can
            // lose exactly one stripe's window while the rest of the system keeps
            // confirming, so no complaint quorum ever assembles. Peers hold the
            // confirmed entries — fetch them. Still complain below: if the gap's
            // stripe is genuinely dead (its proposer crashed before notarizing it),
            // no peer has the entry and only a view change can fill the serial.
            if self.highest_confirmed_seen >= gap {
                self.maybe_state_sync(ctx);
            }
            // Re-broadcast on every fire while the stall lasts: replicas enter a view
            // at different instants, and a Timeout share delivered before the receiver
            // entered the view is dropped — the periodic re-send makes the 2f+1
            // complaint quorum assemble regardless of entry order (receivers
            // deduplicate by sender).
            self.complain(ctx);
        }
    }

    fn complain(&mut self, ctx: &mut Ctx<'_>) {
        let view = self.view;
        self.view_changes.mark_complained(view);
        let digest = timeout_digest(view);
        let share = self.sign(&digest, ctx);
        ctx.broadcast(LeopardMessage::Timeout { view, share });
    }

    fn handle_timeout(
        &mut self,
        from: NodeId,
        view: View,
        share: leopard_crypto::threshold::SignatureShare,
        ctx: &mut Ctx<'_>,
    ) {
        if view.0 < self.view.0 {
            return;
        }
        if share.signer != from.signer_index()
            || !self.verify_share(&share, &timeout_digest(view), ctx)
        {
            return;
        }
        let count = self.view_changes.record_timeout(view, from);
        if view.0 > self.view.0 {
            // View synchronization (the PBFT f+1 rule): once f+1 replicas complain in
            // a view ahead of ours, at least one of them is honest and the cluster has
            // moved on — jump to that view and join the complaint. Without this,
            // replicas that advanced locally past a stalled view change would be
            // split across views, each complaining where nobody listens.
            if count <= self.f() {
                return;
            }
            self.enter_view(view, ctx);
            self.complain(ctx);
        }
        // Join the complaint once f+1 replicas complained.
        if count > self.f() && !self.view_changes.has_complained(view) {
            self.complain(ctx);
        }
        // Abandon the view once 2f+1 replicas complained.
        if count >= self.quorum() && self.view_changes.mark_abandoned(view) {
            self.start_view_change(ctx);
        }
    }

    fn start_view_change(&mut self, ctx: &mut Ctx<'_>) {
        let old_view = self.view;
        self.in_view_change = true;
        self.view_change_started_at = Some(ctx.now());
        let new_view = old_view.next();

        // Collect every notarized-or-better block above the stable checkpoint: the
        // prepared set (evidence that survived earlier view entries) merged with the
        // live instances (which may have re-notarized under a newer view).
        let lw = self.checkpoints.low_watermark().0;
        let mut evidence: BTreeMap<u64, NotarizedEntry> = BTreeMap::new();
        for (&seq, entry) in &self.prepared {
            if seq > lw {
                evidence.insert(seq, entry.clone());
            }
        }
        for (&seq, instance) in &self.replica_instances {
            if seq <= lw {
                continue;
            }
            if let (Some(block), Some(proof)) = (&instance.block, instance.notarization) {
                if instance.state >= BlockState::Notarized {
                    evidence.insert(
                        seq,
                        NotarizedEntry {
                            block: block.clone(),
                            proof,
                        },
                    );
                }
            }
        }
        let notarized: Vec<NotarizedEntry> = evidence.into_values().collect();
        let message = LeopardMessage::ViewChange {
            new_view,
            checkpoint_seq: self.checkpoints.low_watermark(),
            notarized,
        };
        // Every proposer of the new view needs the evidence: each re-proposes only
        // its own stripe, so all `p` of them must independently reach a `2f+1`
        // quorum of ViewChange messages. With `p = 1` this is exactly the classic
        // single send to the next leader.
        for j in 0..self.proposer_count() {
            let proposer = Self::proposer_of_stripe(new_view, j, self.n());
            ctx.send(proposer, message.clone());
        }
        // The replica stops participating in the old view; it resumes on new-view.
        let _ = old_view;
    }

    fn handle_view_change(
        &mut self,
        from: NodeId,
        new_view: View,
        checkpoint_seq: SeqNum,
        notarized: Vec<NotarizedEntry>,
        ctx: &mut Ctx<'_>,
    ) {
        // Only a prospective proposer of `new_view` processes these (with a single
        // proposer that is exactly the prospective leader).
        if self.stripe_in_view(new_view).is_none() {
            return;
        }
        // Verify the notarization proofs before accepting the entries.
        let valid: Vec<NotarizedEntry> = notarized
            .into_iter()
            .filter(|entry| self.verify_combined(&entry.proof, &entry.block.digest(), ctx))
            .collect();
        let bytes = view_change_wire_size(&valid);
        self.view_changes
            .record_view_change(new_view, from, checkpoint_seq, valid, bytes);
        if let Some(payload) = self.view_changes.build_new_view(new_view, self.quorum()) {
            // Become a proposer of the new view.
            self.enter_view(new_view, ctx);
            let blocks = payload.entries.clone();
            ctx.broadcast(LeopardMessage::NewView {
                view: new_view,
                view_change_count: payload.view_change_count,
                view_change_bytes: payload.view_change_bytes,
                blocks: blocks.clone(),
            });

            // Re-propose the surviving blocks (and dummies for the gaps) in the new
            // view — but only the serials on this replica's own stripe. The other
            // proposers of `new_view` received the same ViewChange quorum and cover
            // their stripes from the identical evidence, so every serial above the
            // stable checkpoint is re-proposed exactly once system-wide.
            let p = self.proposer_count();
            let stripe = self.my_stripe().expect("checked by the guard above");
            let mut highest = payload.stable_checkpoint.0;
            for entry in &blocks {
                let seq = entry.block.id.seq;
                highest = highest.max(seq.0);
                if Pipeline::stripe_of(seq, p) != stripe {
                    continue;
                }
                let block = Arc::new(BftBlock::new(new_view, seq, entry.block.links.clone()));
                self.repropose(block, ctx);
            }
            for gap in &payload.gaps {
                if Pipeline::stripe_of(*gap, p) != stripe {
                    continue;
                }
                let block = Arc::new(BftBlock::dummy(new_view, *gap));
                self.repropose(block, ctx);
            }
            self.pipeline.bump_next_seq(SeqNum(highest + 1));
            // The frontier now clears everything the quorum evidence could have
            // notarized — fresh proposals in this view are safe.
            self.anchored_view = new_view;
            // Event-driven pipeline: the new leader extends with whatever became ready
            // while the view-change was in flight.
            self.propose(ctx, true);
        }
    }

    fn repropose(&mut self, block: Arc<BftBlock>, ctx: &mut Ctx<'_>) {
        let digest = block.digest();
        let share = self.sign(&digest, ctx);
        self.pipeline
            .insert(block.id.seq, LeaderInstance::new(block.clone(), ctx.now()));
        ctx.broadcast(LeopardMessage::PrePrepare { block, share });
    }

    fn handle_new_view(
        &mut self,
        from: NodeId,
        view: View,
        view_change_count: u32,
        ctx: &mut Ctx<'_>,
    ) {
        if view.0 <= self.view.0 {
            return;
        }
        // Any proposer of `view` may announce it (each one independently assembles
        // the same ViewChange quorum); with a single proposer only the new leader
        // qualifies, as before.
        let n = self.n() as u64;
        let offset = (u64::from(from.0) + n - view.0 % n) % n;
        if offset >= self.proposer_count() {
            return;
        }
        if (view_change_count as usize) < self.quorum() {
            return;
        }
        self.enter_view(view, ctx);
    }

    fn enter_view(&mut self, view: View, ctx: &mut Ctx<'_>) {
        self.view = view;
        self.in_view_change = false;
        // The proposer rotation shifted by one: re-anchor the pipeline onto this
        // replica's stripe of the new view (no-op for a single proposer).
        self.anchor_pipeline_stripe();
        // Each view entered without intervening progress doubles the patience before
        // the next complaint (reset by `fire_progress_timer` once confirmations flow).
        self.progress_backoff = (self.progress_backoff + 1).min(3);
        if let Some(started) = self.view_change_started_at.take() {
            ctx.observe(ObservationKind::Custom {
                label: "view_change_nanos",
                value: ctx.now().saturating_since(started).as_nanos(),
            });
        }
        ctx.observe(ObservationKind::ViewChange { view: view.0 });
        // Unconfirmed instances will be re-proposed in the new view; reset their voting
        // state so replicas can vote again (for the re-proposed block).
        for instance in self.replica_instances.values_mut() {
            if !instance.is_confirmed() {
                instance.block = None;
                instance.block_digest = None;
                instance.prepare_voted = false;
                instance.commit_voted = false;
                instance.notarization = None;
                instance.notarization_digest = None;
                instance.state = BlockState::Proposed;
                instance.missing_links.clear();
            }
        }
        self.confirmed_at_last_check = self.confirmed_requests;
        // Replay proposals that arrived for this view before we entered it (they
        // raced the NewView). Entries for still-future views stay buffered; stale
        // ones are dropped.
        let deferred = std::mem::take(&mut self.deferred_pre_prepares);
        for (from, block, share) in deferred {
            match block.id.view.0.cmp(&self.view.0) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => self.handle_pre_prepare(from, block, share, ctx),
                std::cmp::Ordering::Greater => {
                    self.deferred_pre_prepares.push((from, block, share))
                }
            }
        }
    }
}

impl LeopardReplica {
    /// Arms all periodic timers (at start, and again after a crash-restart — pre-crash
    /// timers die with the process).
    fn arm_timers(&mut self, ctx: &mut Ctx<'_>) {
        // Stagger the batch timer so system-wide datablock generation is spread evenly.
        //
        // The first fire lands at `stagger ∈ [0, interval)`, *not* at
        // `interval + stagger`: production must start immediately. With the paper's
        // saturated pacing the per-replica interval grows with `n · datablock_size`
        // (≈ 2.9 s at n = 128, ≈ 18 s at n = 600) — deferring the first datablock by a
        // full interval pushed it past the end of a 3 s run, which is exactly the
        // "Leopard confirms nothing at n ≥ 128" collapse: the leader's Ready queue
        // stayed empty forever while every downstream stage waited on it.
        let batch_interval = match self.config.workload {
            WorkloadMode::Saturated { pacing } => pacing,
            _ => self.config.batch_timeout,
        };
        let stagger = if batch_interval.as_nanos() > 0 {
            SimDuration::from_nanos(ctx.rng().gen_range(0..batch_interval.as_nanos()))
        } else {
            SimDuration::ZERO
        };
        ctx.set_timer(WORKLOAD_TICK, TOKEN_WORKLOAD);
        ctx.set_timer(stagger, TOKEN_BATCH);
        ctx.set_timer(self.config.propose_interval, TOKEN_PROPOSE);
        ctx.set_timer(self.config.progress_timeout, TOKEN_PROGRESS);
        ctx.set_timer(self.config.retrieval_timeout, TOKEN_RETRIEVAL);
    }
}

impl Protocol for LeopardReplica {
    type Message = LeopardMessage;

    fn on_start(&mut self, ctx: &mut dyn Context<Message = LeopardMessage>) {
        self.arm_timers(ctx);
    }

    fn on_restart(&mut self, ctx: &mut dyn Context<Message = LeopardMessage>) {
        self.arm_timers(ctx);
        // Rejoin via state transfer instead of replaying from genesis: peers answer
        // with their stable checkpoint proof and the confirmed blocks above it.
        self.begin_state_sync(ctx);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        message: LeopardMessage,
        ctx: &mut dyn Context<Message = LeopardMessage>,
    ) {
        match message {
            LeopardMessage::Datablock(datablock) => self.handle_datablock(from, datablock, ctx),
            LeopardMessage::Ready { digest } => self.handle_ready(from, digest, ctx),
            LeopardMessage::PrePrepare { block, share } => {
                self.handle_pre_prepare(from, block, share, ctx)
            }
            LeopardMessage::PrepareVote {
                seq,
                block_digest,
                share,
            } => self.handle_prepare_vote(from, seq, block_digest, share, ctx),
            LeopardMessage::NotarizationProof {
                seq,
                block_digest,
                proof,
            } => self.handle_notarization(seq, block_digest, proof, ctx),
            LeopardMessage::CommitVote {
                seq,
                proof_digest,
                share,
            } => self.handle_commit_vote(from, seq, proof_digest, share, ctx),
            LeopardMessage::ConfirmationProof {
                seq,
                proof_digest,
                proof,
            } => self.handle_confirmation(seq, proof_digest, proof, ctx),
            LeopardMessage::Query { digests } => self.handle_query(from, digests, ctx),
            LeopardMessage::QueryResponse {
                digest,
                root,
                shard_index,
                payload,
                payload_len,
            } => self.handle_query_response(digest, root, shard_index, payload, payload_len, ctx),
            LeopardMessage::Checkpoint {
                seq,
                state_digest,
                share,
            } => self.handle_checkpoint_share(from, seq, state_digest, share, ctx),
            LeopardMessage::CheckpointProof {
                seq,
                state_digest,
                proof,
            } => self.handle_checkpoint_proof(seq, state_digest, proof, ctx),
            LeopardMessage::Timeout { view, share } => self.handle_timeout(from, view, share, ctx),
            LeopardMessage::ViewChange {
                new_view,
                checkpoint_seq,
                notarized,
            } => self.handle_view_change(from, new_view, checkpoint_seq, notarized, ctx),
            LeopardMessage::NewView {
                view,
                view_change_count,
                ..
            } => self.handle_new_view(from, view, view_change_count, ctx),
            LeopardMessage::StateRequest { last_executed } => {
                self.handle_state_request(from, last_executed, ctx)
            }
            LeopardMessage::StateResponse {
                view,
                checkpoint_seq,
                checkpoint_state,
                checkpoint_proof,
                entries,
            } => self.handle_state_response(
                from,
                view,
                checkpoint_seq,
                checkpoint_state,
                checkpoint_proof,
                entries,
                ctx,
            ),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut dyn Context<Message = LeopardMessage>) {
        match token {
            TOKEN_WORKLOAD => {
                self.inject_workload(ctx);
                ctx.set_timer(WORKLOAD_TICK, TOKEN_WORKLOAD);
            }
            TOKEN_BATCH => {
                self.generate_datablocks(ctx);
                let interval = match self.config.workload {
                    WorkloadMode::Saturated { pacing } => pacing,
                    _ => self.config.batch_timeout,
                };
                ctx.set_timer(interval, TOKEN_BATCH);
            }
            TOKEN_PROPOSE => {
                // The batch-flush tick: the pipeline is event-driven (see `propose`);
                // the periodic tick bounds how long a partial batch waits and guards
                // against a missed wake-up.
                self.propose(ctx, true);
                self.fill_idle_stripe(ctx);
                ctx.set_timer(self.config.propose_interval, TOKEN_PROPOSE);
            }
            TOKEN_PROGRESS => {
                self.fire_progress_timer(ctx);
                ctx.set_timer(self.current_progress_timeout(), TOKEN_PROGRESS);
            }
            TOKEN_RETRIEVAL => {
                self.fire_retrieval_timer(ctx);
                ctx.set_timer(self.config.retrieval_timeout, TOKEN_RETRIEVAL);
            }
            _ => {}
        }
    }

    fn progress_probe(&self, now: SimTime) -> Option<ProgressProbe> {
        let guard = self.current_stall();
        // A guard snapshot alone is not a stall: between two datablock arrivals the
        // leader legitimately sits on `AwaitingReady`. Report a stall only when the
        // guard blocks *and* nothing has confirmed for a full progress-timeout window.
        let making_progress = self
            .last_confirmation_at
            .map(|at| now.saturating_since(at) < self.config.progress_timeout)
            .unwrap_or(false);
        let stall = if guard == StallReason::None || making_progress {
            StallReason::None
        } else {
            guard
        };
        let stalled_since = if stall == StallReason::None {
            None
        } else if self.stall_guard == guard {
            Some(self.stall_guard_since)
        } else {
            Some(now)
        };
        Some(ProgressProbe {
            last_confirmation_at: self.last_confirmation_at,
            stall: stall.as_str(),
            stalled_since,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_simnet::{FaultPlan, NetworkConfig, Simulation};

    fn run_small(
        n: usize,
        config_for: impl Fn(NodeId) -> LeopardConfig,
        faults: FaultPlan,
        secs: u64,
    ) -> (leopard_simnet::SimulationReport, Vec<LeopardConfig>) {
        let base = LeopardConfig::small_test(n);
        let shared = LeopardConfig::shared_keys(&base, 7);
        let configs: Vec<LeopardConfig> = (0..n).map(|i| config_for(NodeId(i as u32))).collect();
        let configs_clone = configs.clone();
        let sim = Simulation::new(NetworkConfig::datacenter(n), faults, move |id| {
            LeopardReplica::new(id, configs_clone[id.as_index()].clone(), shared.clone())
        });
        let report = sim.run_to_report(
            SimTime(SimDuration::from_secs(secs).as_nanos()),
            10_000_000,
        );
        (report, configs)
    }

    #[test]
    fn four_replicas_confirm_requests() {
        let (report, _) = run_small(4, |_| LeopardConfig::small_test(4), FaultPlan::none(), 2);
        assert!(report.metrics.max_confirmed_requests(4) > 100);
        // Every replica confirms (not only the leader).
        for node in 0..4u32 {
            assert!(
                report.metrics.confirmed_requests_at(NodeId(node)) > 0,
                "replica {node} confirmed nothing"
            );
        }
        // Latency samples exist (clients got acknowledgements).
        assert!(!report.metrics.latency_samples().is_empty());
    }

    #[test]
    fn seven_replicas_confirm_requests() {
        let (report, _) = run_small(7, |_| LeopardConfig::small_test(7), FaultPlan::none(), 2);
        assert!(report.metrics.max_confirmed_requests(7) > 100);
    }

    #[test]
    fn two_proposers_confirm_requests() {
        let (report, _) = run_small(
            4,
            |_| LeopardConfig::small_test(4).with_proposers(2),
            FaultPlan::none(),
            2,
        );
        assert!(report.metrics.max_confirmed_requests(4) > 100);
        for node in 0..4u32 {
            assert!(
                report.metrics.confirmed_requests_at(NodeId(node)) > 0,
                "replica {node} confirmed nothing under two proposers"
            );
        }
    }

    #[test]
    fn four_proposers_confirm_requests_at_seven() {
        let (report, _) = run_small(
            7,
            |_| LeopardConfig::small_test(7).with_proposers(4),
            FaultPlan::none(),
            2,
        );
        assert!(report.metrics.max_confirmed_requests(7) > 100);
    }

    #[test]
    fn silent_proposer_on_secondary_stripe_triggers_view_change_and_recovery() {
        let n = 7; // f = 2: tolerates the faulty replica staying Byzantine across views.
        let (report, _) = run_small(
            n,
            |id| {
                let config = LeopardConfig::small_test(n).with_proposers(2);
                // View 1's proposers are replicas 1 (stripe 0 = the leader) and 2
                // (stripe 1). Replica 2 never proposes, so its residue class stalls
                // while the leader's stripe keeps confirming — the progress watchdog
                // must still demote it rather than wedging execution forever.
                if id == NodeId(2) {
                    config.with_byzantine(ByzantineBehavior::SilentLeader)
                } else {
                    config
                }
            },
            FaultPlan::none(),
            6,
        );
        let view_changes: Vec<_> = report
            .metrics
            .observations
            .iter()
            .filter(|o| matches!(o.kind, ObservationKind::ViewChange { .. }))
            .collect();
        assert!(!view_changes.is_empty(), "no view change demoted the silent proposer");
        assert!(report.metrics.max_confirmed_requests(n) > 0);
    }

    #[test]
    fn withholding_votes_by_f_replicas_does_not_stop_progress() {
        let n = 7; // f = 2
        let (report, _) = run_small(
            n,
            |id| {
                let config = LeopardConfig::small_test(n);
                if id.as_index() >= n - 2 {
                    config.with_byzantine(ByzantineBehavior::WithholdVotes)
                } else {
                    config
                }
            },
            FaultPlan::none(),
            2,
        );
        assert!(report.metrics.max_confirmed_requests(n) > 100);
    }

    #[test]
    fn equivocating_leader_cannot_violate_safety() {
        let n = 4;
        let (report, _) = run_small(
            n,
            |id| {
                let config = LeopardConfig::small_test(n);
                // View 1's leader is replica 1.
                if id == NodeId(1) {
                    config.with_byzantine(ByzantineBehavior::EquivocatingLeader)
                } else {
                    config
                }
            },
            FaultPlan::none(),
            2,
        );
        // Safety: for every sequence number, all replicas that committed a block at that
        // sequence committed a block with the same request count. (The detailed
        // block-equality check lives in the integration tests where replica state is
        // accessible; here we check that nothing paniced and progress was not required.)
        let _ = report;
    }

    #[test]
    fn silent_leader_triggers_view_change_and_recovery() {
        let n = 4;
        let (report, _) = run_small(
            n,
            |id| {
                let config = LeopardConfig::small_test(n);
                if id == NodeId(1) {
                    // Replica 1 leads view 1 and stays silent.
                    config.with_byzantine(ByzantineBehavior::SilentLeader)
                } else {
                    config
                }
            },
            FaultPlan::none(),
            6,
        );
        // A view change happened...
        let view_changes: Vec<_> = report
            .metrics
            .observations
            .iter()
            .filter(|o| matches!(o.kind, ObservationKind::ViewChange { .. }))
            .collect();
        assert!(!view_changes.is_empty(), "no view change was observed");
        // ...and requests are confirmed afterwards under the new leader.
        assert!(report.metrics.max_confirmed_requests(n) > 0);
    }

    #[test]
    fn crash_restarted_replica_catches_up_via_state_transfer() {
        let n = 4;
        // Replica 2 (a non-leader) is down for [1s, 2s); the other three keep the
        // quorum, so confirmation continues while it is dark.
        let faults = FaultPlan::none().with_crash_restart(
            NodeId(2),
            SimTime(SimDuration::from_secs(1).as_nanos()),
            SimTime(SimDuration::from_secs(2).as_nanos()),
        );
        let (report, _) = run_small(n, |_| LeopardConfig::small_test(n), faults, 5);
        assert!(report.metrics.max_confirmed_requests(n) > 100);
        // The restarted replica asked for state transfer and got answers.
        assert!(
            report.metrics.traffic.sent_bytes_in(NodeId(2), "statesync") > 0,
            "restarted replica sent no state request"
        );
        assert!(
            report.metrics.traffic.received_bytes_in(NodeId(2), "statesync") > 0,
            "restarted replica received no state response"
        );
        // It resumes executing after the restart instead of staying dark.
        let restart = SimTime(SimDuration::from_secs(2).as_nanos());
        let resumed = report.metrics.observations.iter().any(|o| {
            o.node == NodeId(2)
                && o.at > restart
                && matches!(o.kind, ObservationKind::RequestsConfirmed { .. })
        });
        assert!(resumed, "restarted replica never confirmed after rejoining");
    }

    #[test]
    fn selective_attack_is_survived_via_retrieval() {
        let n = 4;
        // Replica 3 sends its datablocks only to the leader (replica 1) and replica 0.
        let faults = FaultPlan::selective_attack(vec![NodeId(3)], "datablock", 2);
        let (report, _) = run_small(n, |_| LeopardConfig::small_test(n), faults, 4);
        assert!(report.metrics.max_confirmed_requests(n) > 0);
    }
}
