//! The Leopard replica state machine: one [`LeopardReplica`] per node, implementing
//! [`leopard_simnet::Protocol`].
//!
//! The replica combines every component of the protocol:
//!
//! * the embedded client stub and mempool ([`crate::mempool`]),
//! * datablock generation and dissemination (Algorithm 1),
//! * the ready round and the leader's BFTblock proposals,
//! * the two-round agreement with threshold-signature aggregation (Algorithm 2),
//! * datablock retrieval (Algorithm 3),
//! * checkpoints / garbage collection (Algorithm 4),
//! * the PBFT-style view-change (Appendix A),
//! * optional Byzantine behaviours ([`crate::byzantine`]).

use crate::byzantine::ByzantineBehavior;
use crate::checkpoint::{checkpoint_digest, CheckpointState};
use crate::config::{LeopardConfig, SharedKeys, WorkloadMode};
use crate::instance::{LeaderInstance, ReplicaInstance};
use crate::mempool::Mempool;
use crate::messages::{ConfirmedEntry, LeopardMessage, NotarizedEntry, RetrievalPayload};
use crate::pipeline::{Pipeline, StallReason};
use crate::pool::{DatablockPool, ReadyTracker};
use crate::retrieval::{ChunkOutcome, RetrievalManager};
use crate::view_change::{timeout_digest, view_change_wire_size, ViewChangeState};
use leopard_crypto::provider::{BatchOutcome, ComputeCost};
use leopard_crypto::threshold::{CombinedSignature, SignatureShare};
use leopard_crypto::{hash_parts, Digest};
use leopard_simnet::{Context, ObservationKind, ProgressProbe, Protocol, SimDuration, SimTime};
use leopard_types::{BftBlock, BlockState, ClientId, Datablock, NodeId, SeqNum, View, WireSize};
use rand::Rng;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Periodic timer tokens.
const TOKEN_WORKLOAD: u64 = 1;
const TOKEN_BATCH: u64 = 2;
const TOKEN_PROPOSE: u64 = 3;
const TOKEN_PROGRESS: u64 = 4;
const TOKEN_RETRIEVAL: u64 = 5;

/// Interval of the client-stub injection timer in the open-loop workload.
const WORKLOAD_TICK: SimDuration = SimDuration(10_000_000); // 10 ms

/// Latency-breakdown bookkeeping for a datablock this replica produced.
#[derive(Debug, Clone, Copy)]
struct DatablockTiming {
    created_at: SimTime,
    oldest_request_at: SimTime,
    linked_at: Option<SimTime>,
}

/// A Leopard replica.
pub struct LeopardReplica {
    id: NodeId,
    config: LeopardConfig,
    keys: Arc<SharedKeys>,

    // --- normal-case state ---
    view: View,
    mempool: Mempool,
    pool: DatablockPool,
    ready: ReadyTracker,
    pipeline: Pipeline,
    replica_instances: BTreeMap<u64, ReplicaInstance>,
    checkpoints: CheckpointState,
    retrieval: RetrievalManager,
    datablock_counter: u64,
    own_datablocks: HashMap<Digest, DatablockTiming>,

    // --- log / execution ---
    log: BTreeMap<u64, Arc<BftBlock>>,
    last_executed: SeqNum,
    confirmed_requests: u64,
    last_confirmation_at: Option<SimTime>,

    // --- stall diagnostics (leader side) ---
    stall_guard: StallReason,
    stall_guard_since: SimTime,

    // --- view-change state ---
    view_changes: ViewChangeState,
    in_view_change: bool,
    view_change_started_at: Option<SimTime>,

    // --- watchdog ---
    confirmed_at_last_check: u64,

    // --- state transfer (catch-up after a crash-restart or partition heal) ---
    state_sync_at: Option<SimTime>,

    // --- client-stub pacing ---
    injection_carry: f64,
}

impl std::fmt::Debug for LeopardReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeopardReplica")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("last_executed", &self.last_executed)
            .field("confirmed_requests", &self.confirmed_requests)
            .finish()
    }
}

type Ctx<'a> = dyn Context<Message = LeopardMessage> + 'a;

/// Charges a modeled crypto cost to the replica's compute queue (free function so it
/// can be called while instance state is mutably borrowed).
fn charge(ctx: &mut Ctx<'_>, cost: ComputeCost) {
    if !cost.is_zero() {
        ctx.charge_compute(SimDuration::from_nanos(cost.as_nanos()));
    }
}

/// The leader's quorum settlement, shared by both vote rounds: batch-verifies the
/// collected shares (randomized linear combination — one batch check instead of `2f`
/// scheme verifications), purges located forgeries so the quorum can re-form from
/// honest votes (returning `None`), and combines the pre-verified quorum. Modeled
/// costs are charged for both steps.
fn batch_combine(
    keys: &SharedKeys,
    collector: &mut crate::instance::ShareCollector,
    digest: &Digest,
    ctx: &mut Ctx<'_>,
) -> Option<CombinedSignature> {
    let (outcome, cost) = keys.provider.verify_shares_batch(collector.shares(), digest);
    charge(ctx, cost);
    if let BatchOutcome::Invalid(bad) = outcome {
        collector.remove_signers(&bad);
        return None;
    }
    let (combined, cost) = keys.provider.combine_preverified(collector.shares(), digest);
    charge(ctx, cost);
    combined.ok()
}

impl LeopardReplica {
    /// Creates a replica with the given configuration and shared key material.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(id: NodeId, config: LeopardConfig, keys: Arc<SharedKeys>) -> Self {
        config
            .validate()
            .unwrap_or_else(|message| panic!("invalid Leopard config: {message}"));
        let payload_size = config.params.payload_size as u32;
        Self {
            id,
            mempool: Mempool::new(ClientId(id.0), payload_size),
            pool: DatablockPool::new(),
            ready: ReadyTracker::new(),
            pipeline: Pipeline::new(config.params.max_parallel_instances),
            replica_instances: BTreeMap::new(),
            checkpoints: CheckpointState::new(),
            retrieval: RetrievalManager::new(),
            datablock_counter: 1,
            own_datablocks: HashMap::new(),
            log: BTreeMap::new(),
            last_executed: SeqNum(0),
            confirmed_requests: 0,
            last_confirmation_at: None,
            stall_guard: StallReason::None,
            stall_guard_since: SimTime(0),
            view_changes: ViewChangeState::new(),
            in_view_change: false,
            view_change_started_at: None,
            confirmed_at_last_check: 0,
            state_sync_at: None,
            injection_carry: 0.0,
            view: View::initial(),
            config,
            keys,
        }
    }

    /// The replica's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The replica's current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// The current leader from this replica's point of view.
    pub fn leader(&self) -> NodeId {
        self.view.leader(self.config.params.n)
    }

    /// True if this replica is the current leader.
    pub fn is_leader(&self) -> bool {
        self.leader() == self.id
    }

    /// Serial number of the latest executed BFTblock.
    pub fn last_executed(&self) -> SeqNum {
        self.last_executed
    }

    /// Total requests confirmed (executed) by this replica.
    pub fn confirmed_requests(&self) -> u64 {
        self.confirmed_requests
    }

    /// The confirmed BFTblock at `seq`, if it has been added to the log.
    pub fn log_block(&self, seq: SeqNum) -> Option<&Arc<BftBlock>> {
        self.log.get(&seq.0)
    }

    /// Current low watermark (latest stable checkpoint).
    pub fn low_watermark(&self) -> SeqNum {
        self.checkpoints.low_watermark()
    }

    /// The leader-side proposal pipeline (in-flight instances, stall condition).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// This replica's configuration (Byzantine behaviour, timers, protocol parameters).
    pub fn config(&self) -> &LeopardConfig {
        &self.config
    }

    /// Iterates over the confirmed log in serial-number order.
    pub fn log_entries(&self) -> impl Iterator<Item = (SeqNum, &Arc<BftBlock>)> + '_ {
        self.log.iter().map(|(&seq, block)| (SeqNum(seq), block))
    }

    /// The local datablock pool (used by the harness invariant checker to snapshot
    /// retrieval completeness).
    pub fn pool(&self) -> &DatablockPool {
        &self.pool
    }

    /// When this replica last executed a BFTblock, if ever.
    pub fn last_confirmation_at(&self) -> Option<SimTime> {
        self.last_confirmation_at
    }

    /// The guard currently blocking this replica's pipeline, as a first-class value.
    ///
    /// For the leader this is the first failing `propose()` guard; a non-leader only
    /// ever reports [`StallReason::ViewChange`] or [`StallReason::None`].
    pub fn current_stall(&self) -> StallReason {
        if self.is_leader() {
            self.pipeline.stall_reason(
                self.behaviour().silent_as_leader(),
                self.in_view_change,
                self.ready.ready_count(),
                self.checkpoints.high_watermark(self.config.params.max_parallel_instances),
            )
        } else if self.in_view_change {
            StallReason::ViewChange
        } else {
            StallReason::None
        }
    }

    fn quorum(&self) -> usize {
        self.config.params.quorum()
    }

    fn f(&self) -> usize {
        self.config.params.f()
    }

    fn n(&self) -> usize {
        self.config.params.n
    }

    fn behaviour(&self) -> ByzantineBehavior {
        self.config.byzantine
    }

    /// Signs `digest` with this replica's key share, charging the modeled cost.
    fn sign(&self, digest: &Digest, ctx: &mut Ctx<'_>) -> SignatureShare {
        let (share, cost) = self
            .keys
            .provider
            .sign_share(self.keys.keypair(self.id.as_index()), digest);
        charge(ctx, cost);
        share
    }

    /// Verifies a single signature share, charging the modeled cost.
    fn verify_share(&self, share: &SignatureShare, digest: &Digest, ctx: &mut Ctx<'_>) -> bool {
        let (ok, cost) = self.keys.provider.verify_share(share, digest);
        charge(ctx, cost);
        ok
    }

    /// Verifies a combined signature, charging the modeled cost.
    fn verify_combined(
        &self,
        proof: &CombinedSignature,
        digest: &Digest,
        ctx: &mut Ctx<'_>,
    ) -> bool {
        let (ok, cost) = self.keys.provider.verify_combined(proof, digest);
        charge(ctx, cost);
        ok
    }

    // ------------------------------------------------------------------
    // Client stub & datablock generation (Algorithm 1)
    // ------------------------------------------------------------------

    fn inject_workload(&mut self, ctx: &mut Ctx<'_>) {
        let WorkloadMode::OpenLoop { aggregate_rps } = self.config.workload else {
            return;
        };
        if self.is_leader() {
            // Clients pick non-leader replicas (µ excludes the leader).
            return;
        }
        let per_replica = aggregate_rps as f64 / (self.n() - 1) as f64;
        let per_tick = per_replica * WORKLOAD_TICK.as_secs_f64() + self.injection_carry;
        let whole = per_tick.floor() as usize;
        self.injection_carry = per_tick - whole as f64;
        if whole > 0 {
            self.mempool.inject(whole, ctx.now());
        }
    }

    fn generate_datablocks(&mut self, ctx: &mut Ctx<'_>) {
        if self.is_leader() || self.in_view_change {
            return;
        }
        if let WorkloadMode::Saturated { .. } = self.config.workload {
            // Saturated clients always have a full datablock's worth of requests ready.
            self.mempool.inject(self.config.params.datablock_size, ctx.now());
        }
        loop {
            let available = self.mempool.len();
            if available == 0 {
                break;
            }
            let full = available >= self.config.params.datablock_size;
            let requests = self.mempool.take_batch(self.config.params.datablock_size);
            let oldest = ctx.now(); // queueing delay folded into the generation stage
            let datablock = Arc::new(Datablock::new(self.id, self.datablock_counter, requests));
            self.datablock_counter += 1;
            let digest = datablock.digest();
            // Producing the datablock hashes its encoded bytes once.
            charge(ctx, self.keys.provider.model().hash(datablock.wire_size()));
            self.own_datablocks.insert(
                digest,
                DatablockTiming {
                    created_at: ctx.now(),
                    oldest_request_at: oldest,
                    linked_at: None,
                },
            );
            self.pool.insert(datablock.clone());
            ctx.multicast(LeopardMessage::Datablock(datablock));
            if !self.behaviour().withholds_votes() {
                ctx.send(self.leader(), LeopardMessage::Ready { digest });
            }
            if !full {
                // Only one partial datablock per flush.
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Leader: proposing BFTblocks (Algorithm 2, pre-prepare)
    // ------------------------------------------------------------------

    /// Proposes BFTblocks until a pipeline guard blocks (recording that guard) or the
    /// batching policy defers.
    ///
    /// This is **event-driven**: instead of only running on a fixed timer tick, it is
    /// invoked from every event that changes one of its guards — a datablock crossing
    /// the ready threshold ([`Self::handle_ready`]), an instance confirming
    /// ([`Self::handle_commit_vote`]), the watermark advancing
    /// ([`Self::handle_checkpoint_proof`]) and a new view starting
    /// ([`Self::handle_view_change`]).
    ///
    /// Batching policy: an event-driven call (`flush = false`) proposes eagerly only
    /// when a full `τ` batch of ready datablocks is available or the pipeline is idle
    /// (an empty pipeline must never wait — that is the availability-triggered
    /// proposing of FnF-BFT/Raptr). While instances are in flight, partial batches
    /// accumulate so the per-block vote rounds amortise over `τ` links as in the
    /// paper; the `TOKEN_PROPOSE` tick (`flush = true`) bounds how long a partial
    /// batch can wait.
    fn propose(&mut self, ctx: &mut Ctx<'_>, flush: bool) {
        if !self.is_leader() {
            return;
        }
        loop {
            let reason = self.pipeline.stall_reason(
                self.behaviour().silent_as_leader(),
                self.in_view_change,
                self.ready.ready_count(),
                self.checkpoints.high_watermark(self.config.params.max_parallel_instances),
            );
            if reason != StallReason::None {
                self.record_stall(reason, ctx.now());
                return;
            }
            if !flush
                && self.pipeline.in_flight() > 0
                && self.ready.ready_count() < self.config.params.bftblock_size
            {
                // Work is in flight and the batch is partial: let it fill. Not a
                // stall — the next confirmation or the flush tick picks it up.
                self.record_stall(StallReason::None, ctx.now());
                return;
            }
            let links = self.ready.take_ready(self.config.params.bftblock_size);
            let seq = self.pipeline.take_seq();

            if self.behaviour().equivocates() {
                self.propose_equivocating(seq, links, ctx);
                continue;
            }

            let block = Arc::new(BftBlock::new(self.view, seq, links));
            let digest = block.digest();
            charge(ctx, self.keys.provider.model().hash(block.wire_size()));
            let share = self.sign(&digest, ctx);
            self.pipeline.insert(seq, LeaderInstance::new(block.clone(), ctx.now()));
            ctx.broadcast(LeopardMessage::PrePrepare { block, share });
        }
    }

    /// Tracks when the currently blocking guard last changed (for progress probes).
    fn record_stall(&mut self, reason: StallReason, now: SimTime) {
        if self.stall_guard != reason {
            self.stall_guard = reason;
            self.stall_guard_since = now;
        }
    }

    /// Byzantine leader: send conflicting blocks with the same serial number to two
    /// halves of the replicas. Safety must hold regardless.
    fn propose_equivocating(&mut self, seq: SeqNum, links: Vec<Digest>, ctx: &mut Ctx<'_>) {
        let block_a = Arc::new(BftBlock::new(self.view, seq, links.clone()));
        let mut reversed = links;
        reversed.reverse();
        // Ensure the digests differ even for a single link by dropping it in block B.
        let block_b = if reversed.len() == 1 {
            Arc::new(BftBlock::new(self.view, seq, Vec::new()))
        } else {
            Arc::new(BftBlock::new(self.view, seq, reversed))
        };
        let share_a = self.sign(&block_a.digest(), ctx);
        let share_b = self.sign(&block_b.digest(), ctx);
        self.pipeline
            .insert(seq, LeaderInstance::new(block_a.clone(), ctx.now()));
        let half = self.n() / 2;
        for index in 0..self.n() {
            let peer = NodeId(index as u32);
            if peer == self.id {
                continue;
            }
            let message = if index < half {
                LeopardMessage::PrePrepare {
                    block: block_a.clone(),
                    share: share_a,
                }
            } else {
                LeopardMessage::PrePrepare {
                    block: block_b.clone(),
                    share: share_b,
                }
            };
            ctx.send(peer, message);
        }
        ctx.send(
            self.id,
            LeopardMessage::PrePrepare {
                block: block_a,
                share: share_a,
            },
        );
    }

    // ------------------------------------------------------------------
    // Agreement: replica side (Algorithm 2)
    // ------------------------------------------------------------------

    fn handle_datablock(&mut self, from: NodeId, datablock: Arc<Datablock>, ctx: &mut Ctx<'_>) {
        if datablock.id.producer != from {
            // A replica may only disseminate its own datablocks.
            return;
        }
        // Receiving a datablock re-hashes it to validate the digest it will be linked
        // and acknowledged under (the real hash is memoized on the shared envelope, but
        // every replica pays the modeled cost — in a deployment each would hash).
        charge(ctx, self.keys.provider.model().hash(datablock.wire_size()));
        let Some(digest) = self.pool.insert(datablock) else {
            return; // duplicate counter
        };
        if !self.behaviour().withholds_votes() {
            ctx.send(self.leader(), LeopardMessage::Ready { digest });
        }
        // A pending retrieval for this datablock is no longer needed.
        let waiting = self.retrieval.cancel(&digest);
        for seq in waiting {
            self.resolve_missing_link(seq, digest, ctx);
        }
    }

    fn handle_ready(&mut self, from: NodeId, digest: Digest, ctx: &mut Ctx<'_>) {
        if !self.is_leader() {
            return;
        }
        // Only datablocks the leader itself stores may become ready (it must be able to
        // serve retrieval queries for everything it links).
        if !self.pool.contains(&digest) {
            return;
        }
        if self.ready.record_ack(digest, from, self.quorum()) {
            // Event-driven pipeline: a datablock just crossed the `2f+1` threshold, so
            // the `AwaitingReady` guard may have cleared.
            self.propose(ctx, false);
        }
    }

    fn handle_pre_prepare(
        &mut self,
        from: NodeId,
        block: Arc<BftBlock>,
        share: leopard_crypto::threshold::SignatureShare,
        ctx: &mut Ctx<'_>,
    ) {
        // VRFBFTBLOCK checks (Algorithm 2, line 37).
        if block.id.view != self.view || self.in_view_change {
            return;
        }
        if from != self.leader() {
            return;
        }
        let digest = block.digest();
        charge(ctx, self.keys.provider.model().hash(block.wire_size()));
        if share.signer != self.leader().signer_index() || !self.verify_share(&share, &digest, ctx)
        {
            return;
        }
        let seq = block.id.seq;
        let lw = self.checkpoints.low_watermark().0;
        let k = self.config.params.max_parallel_instances as u64;
        if seq.0 <= lw || seq.0 > lw + k {
            return;
        }
        let instance = self.replica_instances.entry(seq.0).or_default();
        if let Some(existing) = instance.block_digest {
            if existing != digest {
                // Equivocation: refuse to adopt a second block for the same serial
                // number in the same view.
                return;
            }
        }
        instance.block = Some(block.clone());
        instance.block_digest = Some(digest);
        if instance.received_at.is_none() {
            instance.received_at = Some(ctx.now());
        }

        // Record the link time of our own datablocks (latency breakdown).
        for link in &block.links {
            if let Some(timing) = self.own_datablocks.get_mut(link) {
                if timing.linked_at.is_none() {
                    timing.linked_at = Some(ctx.now());
                }
            }
        }

        // Check the availability of every linked datablock.
        let missing: Vec<Digest> = block
            .links
            .iter()
            .filter(|link| !self.pool.contains(link))
            .copied()
            .collect();
        if !missing.is_empty() {
            let instance = self.replica_instances.get_mut(&seq.0).expect("just inserted");
            for link in missing {
                instance.missing_links.insert(link);
                self.retrieval.note_missing(link, seq, ctx.now());
            }
            return;
        }
        self.cast_prepare_vote(seq, ctx);
    }

    fn cast_prepare_vote(&mut self, seq: SeqNum, ctx: &mut Ctx<'_>) {
        if self.behaviour().withholds_votes() {
            return;
        }
        let leader = self.leader();
        let Some(instance) = self.replica_instances.get_mut(&seq.0) else {
            return;
        };
        if instance.prepare_voted || !instance.links_complete() {
            return;
        }
        let Some(digest) = instance.block_digest else {
            return;
        };
        instance.prepare_voted = true;
        let (share, cost) = self
            .keys
            .provider
            .sign_share(self.keys.keypair(self.id.as_index()), &digest);
        charge(ctx, cost);
        ctx.send(
            leader,
            LeopardMessage::PrepareVote {
                seq,
                block_digest: digest,
                share,
            },
        );
    }

    fn resolve_missing_link(&mut self, seq: SeqNum, digest: Digest, ctx: &mut Ctx<'_>) {
        let Some(instance) = self.replica_instances.get_mut(&seq.0) else {
            return;
        };
        instance.missing_links.remove(&digest);
        if instance.links_complete() && !instance.prepare_voted {
            self.cast_prepare_vote(seq, ctx);
        }
        // A confirmed block may have been waiting for this datablock to execute.
        self.try_execute(ctx);
    }

    fn notarization_digest(seq: SeqNum, block_digest: &Digest, proof: &CombinedSignature) -> Digest {
        hash_parts([
            b"notarize".as_slice(),
            &seq.0.to_le_bytes(),
            block_digest.as_bytes(),
            &proof.value.value().to_le_bytes(),
        ])
    }

    fn handle_prepare_vote(
        &mut self,
        from: NodeId,
        seq: SeqNum,
        block_digest: Digest,
        share: leopard_crypto::threshold::SignatureShare,
        ctx: &mut Ctx<'_>,
    ) {
        if !self.is_leader() {
            return;
        }
        // Only the signer-identity check happens per vote; the share values are
        // verified in one batch when the quorum completes (randomized linear
        // combination — the amortisation that keeps the leader's sequential CPU work
        // per round at one batch check instead of `2f` scheme verifications).
        if share.signer != from.signer_index() {
            return;
        }
        let quorum = self.quorum();
        let Some(instance) = self.pipeline.get_mut(seq) else {
            return;
        };
        if instance.block_digest != block_digest || instance.notarization.is_some() {
            return;
        }
        if instance.prepares.add(share) < quorum {
            return;
        }
        let Some(proof) = batch_combine(&self.keys, &mut instance.prepares, &block_digest, ctx)
        else {
            return;
        };
        instance.notarization = Some(proof);
        let digest = Self::notarization_digest(seq, &block_digest, &proof);
        instance.notarization_digest = Some(digest);
        ctx.broadcast(LeopardMessage::NotarizationProof {
            seq,
            block_digest,
            proof,
        });
    }

    fn handle_notarization(
        &mut self,
        seq: SeqNum,
        block_digest: Digest,
        proof: CombinedSignature,
        ctx: &mut Ctx<'_>,
    ) {
        if !self.verify_combined(&proof, &block_digest, ctx) {
            return;
        }
        let lw = self.checkpoints.low_watermark().0;
        if seq.0 <= lw {
            return;
        }
        let withholds = self.behaviour().withholds_votes();
        let instance = self.replica_instances.entry(seq.0).or_default();
        if instance.block_digest.is_some() && instance.block_digest != Some(block_digest) {
            return;
        }
        if instance.state < BlockState::Notarized {
            instance.state = BlockState::Notarized;
        }
        instance.block_digest.get_or_insert(block_digest);
        instance.notarization = Some(proof);
        let notarization_digest = Self::notarization_digest(seq, &block_digest, &proof);
        instance.notarization_digest = Some(notarization_digest);

        if instance.commit_voted || withholds {
            return;
        }
        instance.commit_voted = true;
        let (share, cost) = self
            .keys
            .provider
            .sign_share(self.keys.keypair(self.id.as_index()), &notarization_digest);
        charge(ctx, cost);
        ctx.send(
            self.leader(),
            LeopardMessage::CommitVote {
                seq,
                proof_digest: notarization_digest,
                share,
            },
        );
    }

    fn handle_commit_vote(
        &mut self,
        from: NodeId,
        seq: SeqNum,
        proof_digest: Digest,
        share: leopard_crypto::threshold::SignatureShare,
        ctx: &mut Ctx<'_>,
    ) {
        if !self.is_leader() {
            return;
        }
        if share.signer != from.signer_index() {
            return;
        }
        let quorum = self.quorum();
        let Some(instance) = self.pipeline.get_mut(seq) else {
            return;
        };
        if instance.notarization_digest != Some(proof_digest) || instance.confirmation.is_some() {
            return;
        }
        if instance.commits.add(share) < quorum {
            return;
        }
        let Some(proof) = batch_combine(&self.keys, &mut instance.commits, &proof_digest, ctx)
        else {
            return;
        };
        self.pipeline.record_confirmation(seq, proof);
        ctx.broadcast(LeopardMessage::ConfirmationProof {
            seq,
            proof_digest,
            proof,
        });
        // Event-driven pipeline: the confirmation freed an in-flight slot, so the
        // `InstancesFull` guard may have cleared.
        self.propose(ctx, false);
    }

    fn handle_confirmation(
        &mut self,
        seq: SeqNum,
        proof_digest: Digest,
        proof: CombinedSignature,
        ctx: &mut Ctx<'_>,
    ) {
        if !self.verify_combined(&proof, &proof_digest, ctx) {
            return;
        }
        let lw = self.checkpoints.low_watermark().0;
        if seq.0 <= lw && self.log.contains_key(&seq.0) {
            return;
        }
        let instance = self.replica_instances.entry(seq.0).or_default();
        if let Some(expected) = instance.notarization_digest {
            if expected != proof_digest {
                return;
            }
        }
        if instance.is_confirmed() {
            return;
        }
        instance.state = BlockState::Confirmed;
        instance.confirmation = Some(proof);
        if let Some(block) = instance.block.clone() {
            self.log.insert(seq.0, block);
        }
        self.try_execute(ctx);
    }

    // ------------------------------------------------------------------
    // Execution, acknowledgement, checkpoints
    // ------------------------------------------------------------------

    fn try_execute(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let next = SeqNum(self.last_executed.0 + 1);
            let Some(block) = self.log.get(&next.0).cloned() else {
                break;
            };
            // Every linked datablock must be locally available before execution.
            let mut missing = Vec::new();
            for link in &block.links {
                if !self.pool.contains(link) {
                    missing.push(*link);
                }
            }
            if !missing.is_empty() {
                for link in missing {
                    if self.retrieval.note_missing(link, next, ctx.now()) {
                        // The retrieval timer is periodic; nothing else to arm here.
                    }
                }
                break;
            }

            let mut request_count = 0u64;
            let mut payload_bytes = 0u64;
            for link in &block.links {
                let datablock = self.pool.get(link).expect("checked above").clone();
                request_count += datablock.len() as u64;
                payload_bytes += datablock.payload_bytes() as u64;
                // Acknowledge our own requests (client-side latency measurement).
                if datablock.id.producer == self.id {
                    for request in &datablock.requests {
                        if let Some(latency) = self.mempool.acknowledge(&request.id, ctx.now()) {
                            ctx.observe(ObservationKind::RequestLatency { nanos: latency });
                        }
                    }
                }
                // Latency breakdown for datablocks we produced.
                if let Some(timing) = self.own_datablocks.remove(link) {
                    let generation = timing
                        .created_at
                        .saturating_since(timing.oldest_request_at)
                        .as_nanos();
                    let linked = timing.linked_at.unwrap_or(ctx.now());
                    let dissemination = linked.saturating_since(timing.created_at).as_nanos();
                    let agreement = ctx.now().saturating_since(linked).as_nanos();
                    ctx.observe(ObservationKind::Custom {
                        label: "latency_generation",
                        value: generation,
                    });
                    ctx.observe(ObservationKind::Custom {
                        label: "latency_dissemination",
                        value: dissemination,
                    });
                    ctx.observe(ObservationKind::Custom {
                        label: "latency_agreement",
                        value: agreement,
                    });
                }
            }
            self.confirmed_requests += request_count;
            if request_count > 0 {
                ctx.observe(ObservationKind::RequestsConfirmed {
                    count: request_count,
                    payload_bytes,
                });
            }
            ctx.observe(ObservationKind::BlockCommitted {
                sequence: next.0,
                requests: request_count,
            });
            self.last_executed = next;
            self.last_confirmation_at = Some(ctx.now());

            // Checkpoint (Algorithm 4).
            if CheckpointState::is_checkpoint_height(next, self.config.checkpoint_interval)
                && !self.behaviour().withholds_votes()
            {
                let state_digest = hash_parts([b"state".as_slice(), &next.0.to_le_bytes()]);
                let digest = checkpoint_digest(next, &state_digest);
                let share = self.sign(&digest, ctx);
                ctx.send(
                    self.leader(),
                    LeopardMessage::Checkpoint {
                        seq: next,
                        state_digest,
                        share,
                    },
                );
            }
        }
    }

    fn handle_checkpoint_share(
        &mut self,
        from: NodeId,
        seq: SeqNum,
        state_digest: Digest,
        share: leopard_crypto::threshold::SignatureShare,
        ctx: &mut Ctx<'_>,
    ) {
        if !self.is_leader() {
            return;
        }
        let digest = checkpoint_digest(seq, &state_digest);
        // Checkpoints are rare (one per k/2 blocks), so shares are verified on arrival
        // rather than batched; the combine still skips re-verification.
        if share.signer != from.signer_index() || !self.verify_share(&share, &digest, ctx) {
            return;
        }
        if let Some(shares) = self
            .checkpoints
            .record_share(seq, state_digest, share, self.quorum())
        {
            let (combined, cost) = self.keys.provider.combine_preverified(&shares, &digest);
            charge(ctx, cost);
            if let Ok(proof) = combined {
                ctx.broadcast(LeopardMessage::CheckpointProof {
                    seq,
                    state_digest,
                    proof,
                });
            }
        }
    }

    fn handle_checkpoint_proof(
        &mut self,
        seq: SeqNum,
        state_digest: Digest,
        proof: CombinedSignature,
        ctx: &mut Ctx<'_>,
    ) {
        let digest = checkpoint_digest(seq, &state_digest);
        if !self.verify_combined(&proof, &digest, ctx) {
            return;
        }
        if !self.checkpoints.advance_proven(seq, state_digest, proof) {
            return;
        }
        // Garbage collection: drop instances, log entries and executed datablocks at or
        // below the new watermark.
        let watermark = seq.0;
        let mut executed_links = Vec::new();
        for (&s, block) in self.log.range(..=watermark) {
            if s <= self.last_executed.0 {
                executed_links.extend(block.links.iter().copied());
            }
        }
        self.pool.prune(executed_links.iter().copied());
        self.retrieval.prune(executed_links.iter().copied());
        self.ready.prune(executed_links);
        self.pipeline.prune_through(SeqNum(watermark));
        self.replica_instances.retain(|&s, _| s > watermark);
        if watermark > self.last_executed.0 {
            // The system checkpointed past this replica's execution point: it missed
            // confirmations (partition, crash) and can no longer execute forward on its
            // own — catch up via state transfer.
            self.maybe_state_sync(ctx);
        }
        // Event-driven pipeline: the watermark advance may have cleared the
        // `WatermarkFull` guard.
        self.propose(ctx, false);
    }

    // ------------------------------------------------------------------
    // State transfer (catch-up after a crash-restart or partition heal)
    // ------------------------------------------------------------------

    /// Asks `f + 1` peers (guaranteeing at least one honest responder) for everything
    /// confirmed past this replica's execution point.
    fn begin_state_sync(&mut self, ctx: &mut Ctx<'_>) {
        self.state_sync_at = Some(ctx.now());
        let request = LeopardMessage::StateRequest {
            last_executed: self.last_executed,
        };
        let mut remaining = self.f() + 1;
        for index in 0..self.n() {
            let peer = NodeId(index as u32);
            if peer == self.id {
                continue;
            }
            ctx.send(peer, request.clone());
            remaining -= 1;
            if remaining == 0 {
                break;
            }
        }
    }

    /// Starts a state sync unless one is already in flight (cooldown of one progress
    /// timeout) or a view change will re-synchronise the replica anyway.
    fn maybe_state_sync(&mut self, ctx: &mut Ctx<'_>) {
        if self.in_view_change {
            return;
        }
        if let Some(at) = self.state_sync_at {
            if ctx.now().saturating_since(at) < self.config.progress_timeout {
                return;
            }
        }
        self.begin_state_sync(ctx);
    }

    fn handle_state_request(&mut self, from: NodeId, last_executed: SeqNum, ctx: &mut Ctx<'_>) {
        if self.behaviour().ignores_queries() {
            return;
        }
        let (checkpoint_seq, checkpoint_state, checkpoint_proof) =
            match self.checkpoints.stable_proof() {
                Some((state, proof)) => (self.checkpoints.low_watermark(), *state, Some(*proof)),
                None => (
                    SeqNum(0),
                    hash_parts([b"state".as_slice(), &0u64.to_le_bytes()]),
                    None,
                ),
            };
        let mut entries = Vec::new();
        for (&seq, instance) in &self.replica_instances {
            if seq <= last_executed.0 || !instance.is_confirmed() {
                continue;
            }
            // Both proofs are needed for the requester to accept the block without
            // having voted; an entry missing either is skipped (another responder or
            // the live protocol will cover it).
            if let (Some(block), Some(notarization), Some(confirmation)) =
                (&instance.block, instance.notarization, instance.confirmation)
            {
                entries.push(ConfirmedEntry {
                    block: block.clone(),
                    notarization,
                    confirmation,
                });
            }
        }
        ctx.send(
            from,
            LeopardMessage::StateResponse {
                view: self.view,
                checkpoint_seq,
                checkpoint_state,
                checkpoint_proof,
                entries,
            },
        );
    }

    fn handle_state_response(
        &mut self,
        view: View,
        checkpoint_seq: SeqNum,
        checkpoint_state: Digest,
        checkpoint_proof: Option<CombinedSignature>,
        entries: Vec<ConfirmedEntry>,
        ctx: &mut Ctx<'_>,
    ) {
        // Adopt the responder's stable checkpoint if its proof verifies.
        if let Some(proof) = checkpoint_proof {
            let digest = checkpoint_digest(checkpoint_seq, &checkpoint_state);
            if self.verify_combined(&proof, &digest, ctx) {
                self.checkpoints.advance_proven(checkpoint_seq, checkpoint_state, proof);
            }
        }
        // Jump execution to the stable watermark — whether it came from this response
        // or from a `CheckpointProof` multicast that raced ahead of it. Everything at
        // or below a stable checkpoint is summarised by its quorum-signed state digest,
        // and blocks below the cluster-wide watermark are garbage-collected at the
        // peers, so replaying them is impossible anyway.
        if self.checkpoints.stable_proof().is_some() {
            let watermark = self.checkpoints.low_watermark();
            if watermark > self.last_executed {
                self.last_executed = watermark;
                self.last_confirmation_at = Some(ctx.now());
                self.replica_instances.retain(|&s, _| s > watermark.0);
                self.pipeline.prune_through(watermark);
            }
        }
        for entry in entries {
            self.install_confirmed_entry(entry, ctx);
        }
        // Rejoin the responder's view if this replica missed a view change while down.
        // Like `handle_new_view`, this trusts view metadata from a single peer: a lying
        // responder can only delay this one replica until the next genuine view change,
        // never affect safety (votes are bound to their view).
        if view.0 > self.view.0 {
            self.enter_view(view, ctx);
        }
        self.try_execute(ctx);
    }

    /// Installs one confirmed block received via state transfer, after verifying its
    /// notarization and confirmation proofs.
    fn install_confirmed_entry(&mut self, entry: ConfirmedEntry, ctx: &mut Ctx<'_>) {
        let seq = entry.block.id.seq;
        if seq.0 <= self.last_executed.0 || seq <= self.checkpoints.low_watermark() {
            return;
        }
        let block_digest = entry.block.digest();
        charge(ctx, self.keys.provider.model().hash(entry.block.wire_size()));
        if !self.verify_combined(&entry.notarization, &block_digest, ctx) {
            return;
        }
        let notarization_digest = Self::notarization_digest(seq, &block_digest, &entry.notarization);
        if !self.verify_combined(&entry.confirmation, &notarization_digest, ctx) {
            return;
        }
        let instance = self.replica_instances.entry(seq.0).or_default();
        if instance.is_confirmed() {
            return;
        }
        instance.block = Some(entry.block.clone());
        instance.block_digest = Some(block_digest);
        instance.state = BlockState::Confirmed;
        instance.notarization = Some(entry.notarization);
        instance.notarization_digest = Some(notarization_digest);
        instance.confirmation = Some(entry.confirmation);
        if instance.received_at.is_none() {
            instance.received_at = Some(ctx.now());
        }
        self.log.insert(seq.0, entry.block.clone());
        // Any linked datablock this replica does not hold is fetched through the
        // regular retrieval plane (Algorithm 3) before execution.
        for link in &entry.block.links {
            if !self.pool.contains(link) {
                self.retrieval.note_missing(*link, seq, ctx.now());
            }
        }
    }

    // ------------------------------------------------------------------
    // Retrieval (Algorithm 3)
    // ------------------------------------------------------------------

    fn handle_query(&mut self, from: NodeId, digests: Vec<Digest>, ctx: &mut Ctx<'_>) {
        if self.behaviour().ignores_queries() {
            return;
        }
        let (f, n) = (self.f(), self.n());
        for digest in digests {
            if !self.retrieval.should_serve(digest, from) {
                continue;
            }
            let Some(datablock) = self.pool.get(&digest).cloned() else {
                continue;
            };
            if let Some(response) =
                self.retrieval
                    .encode_response(&datablock, self.id, f, n, &self.keys.provider)
            {
                charge(ctx, response.cost);
                ctx.send(
                    from,
                    LeopardMessage::QueryResponse {
                        digest,
                        root: response.root,
                        shard_index: response.shard_index,
                        payload: response.payload,
                        payload_len: response.payload_len,
                    },
                );
            }
        }
    }

    fn handle_query_response(
        &mut self,
        digest: Digest,
        root: Digest,
        shard_index: u32,
        payload: RetrievalPayload,
        payload_len: u64,
        ctx: &mut Ctx<'_>,
    ) {
        let (f, n) = (self.f(), self.n());
        let (outcome, cost) = self.retrieval.add_chunk(
            digest,
            root,
            shard_index,
            payload,
            payload_len,
            f,
            n,
            ctx.now(),
            &self.keys.provider,
        );
        charge(ctx, cost);
        if let ChunkOutcome::Recovered {
            datablock,
            waiting,
            elapsed_nanos,
            received_bytes,
        } = outcome
        {
            ctx.observe(ObservationKind::RetrievalCompleted {
                nanos: elapsed_nanos,
                received_bytes,
            });
            if self.pool.insert(datablock).is_some() && !self.behaviour().withholds_votes() {
                ctx.send(self.leader(), LeopardMessage::Ready { digest });
            }
            for seq in waiting {
                self.resolve_missing_link(seq, digest, ctx);
            }
        }
    }

    fn fire_retrieval_timer(&mut self, ctx: &mut Ctx<'_>) {
        let digests = self.retrieval.digests_to_query();
        if !digests.is_empty() {
            ctx.multicast(LeopardMessage::Query { digests });
        }
    }

    // ------------------------------------------------------------------
    // View-change (Appendix A)
    // ------------------------------------------------------------------

    fn outstanding_work(&self) -> bool {
        self.mempool.outstanding() > 0
            || self
                .replica_instances
                .values()
                .any(|instance| !instance.is_confirmed())
    }

    fn fire_progress_timer(&mut self, ctx: &mut Ctx<'_>) {
        let progressed = self.confirmed_requests > self.confirmed_at_last_check
            || self.last_executed.0 > 0 && self.confirmed_requests == self.confirmed_at_last_check && !self.outstanding_work();
        let stalled = !progressed && self.outstanding_work();
        self.confirmed_at_last_check = self.confirmed_requests;
        if stalled && !self.in_view_change {
            self.complain(ctx);
        }
    }

    fn complain(&mut self, ctx: &mut Ctx<'_>) {
        let view = self.view;
        if !self.view_changes.mark_complained(view) {
            return;
        }
        let digest = timeout_digest(view);
        let share = self.sign(&digest, ctx);
        ctx.broadcast(LeopardMessage::Timeout { view, share });
    }

    fn handle_timeout(
        &mut self,
        from: NodeId,
        view: View,
        share: leopard_crypto::threshold::SignatureShare,
        ctx: &mut Ctx<'_>,
    ) {
        if view != self.view {
            return;
        }
        if share.signer != from.signer_index()
            || !self.verify_share(&share, &timeout_digest(view), ctx)
        {
            return;
        }
        let count = self.view_changes.record_timeout(view, from);
        // Join the complaint once f+1 replicas complained.
        if count > self.f() && !self.view_changes.has_complained(view) {
            self.complain(ctx);
        }
        // Abandon the view once 2f+1 replicas complained.
        if count >= self.quorum() && self.view_changes.mark_abandoned(view) {
            self.start_view_change(ctx);
        }
    }

    fn start_view_change(&mut self, ctx: &mut Ctx<'_>) {
        let old_view = self.view;
        self.in_view_change = true;
        self.view_change_started_at = Some(ctx.now());
        let new_view = old_view.next();
        let next_leader = new_view.leader(self.n());

        // Collect every notarized-or-better block above the stable checkpoint.
        let mut notarized = Vec::new();
        for (&seq, instance) in &self.replica_instances {
            if seq <= self.checkpoints.low_watermark().0 {
                continue;
            }
            if let (Some(block), Some(proof)) = (&instance.block, instance.notarization) {
                if instance.state >= BlockState::Notarized {
                    notarized.push(NotarizedEntry {
                        block: block.clone(),
                        proof,
                    });
                }
            }
        }
        let message = LeopardMessage::ViewChange {
            new_view,
            checkpoint_seq: self.checkpoints.low_watermark(),
            notarized,
        };
        ctx.send(next_leader, message.clone());
        if next_leader == self.id {
            // Self-send happens through the same path for uniformity.
        }
        // The replica stops participating in the old view; it resumes on new-view.
        let _ = old_view;
    }

    fn handle_view_change(
        &mut self,
        from: NodeId,
        new_view: View,
        checkpoint_seq: SeqNum,
        notarized: Vec<NotarizedEntry>,
        ctx: &mut Ctx<'_>,
    ) {
        if new_view.leader(self.n()) != self.id || new_view.0 <= self.view.0 && !self.in_view_change
        {
            // Only the prospective leader of `new_view` processes these.
            if new_view.leader(self.n()) != self.id {
                return;
            }
        }
        // Verify the notarization proofs before accepting the entries.
        let valid: Vec<NotarizedEntry> = notarized
            .into_iter()
            .filter(|entry| self.verify_combined(&entry.proof, &entry.block.digest(), ctx))
            .collect();
        let bytes = view_change_wire_size(&valid);
        self.view_changes
            .record_view_change(new_view, from, checkpoint_seq, valid, bytes);
        if let Some(payload) = self.view_changes.build_new_view(new_view, self.quorum()) {
            // Become the leader of the new view.
            self.enter_view(new_view, ctx);
            let blocks = payload.entries.clone();
            ctx.broadcast(LeopardMessage::NewView {
                view: new_view,
                view_change_count: payload.view_change_count,
                view_change_bytes: payload.view_change_bytes,
                blocks: blocks.clone(),
            });

            // Re-propose the surviving blocks (and dummies for the gaps) in the new view.
            let mut highest = payload.stable_checkpoint.0;
            for entry in &blocks {
                highest = highest.max(entry.block.id.seq.0);
                let block = Arc::new(BftBlock::new(new_view, entry.block.id.seq, entry.block.links.clone()));
                self.repropose(block, ctx);
            }
            for gap in &payload.gaps {
                let block = Arc::new(BftBlock::dummy(new_view, *gap));
                self.repropose(block, ctx);
            }
            self.pipeline.bump_next_seq(SeqNum(highest + 1));
            // Event-driven pipeline: the new leader extends with whatever became ready
            // while the view-change was in flight.
            self.propose(ctx, true);
        }
    }

    fn repropose(&mut self, block: Arc<BftBlock>, ctx: &mut Ctx<'_>) {
        let digest = block.digest();
        let share = self.sign(&digest, ctx);
        self.pipeline
            .insert(block.id.seq, LeaderInstance::new(block.clone(), ctx.now()));
        ctx.broadcast(LeopardMessage::PrePrepare { block, share });
    }

    fn handle_new_view(
        &mut self,
        from: NodeId,
        view: View,
        view_change_count: u32,
        ctx: &mut Ctx<'_>,
    ) {
        if view.0 <= self.view.0 {
            return;
        }
        if from != view.leader(self.n()) {
            return;
        }
        if (view_change_count as usize) < self.quorum() {
            return;
        }
        self.enter_view(view, ctx);
    }

    fn enter_view(&mut self, view: View, ctx: &mut Ctx<'_>) {
        self.view = view;
        self.in_view_change = false;
        if let Some(started) = self.view_change_started_at.take() {
            ctx.observe(ObservationKind::Custom {
                label: "view_change_nanos",
                value: ctx.now().saturating_since(started).as_nanos(),
            });
        }
        ctx.observe(ObservationKind::ViewChange { view: view.0 });
        // Unconfirmed instances will be re-proposed in the new view; reset their voting
        // state so replicas can vote again (for the re-proposed block).
        for instance in self.replica_instances.values_mut() {
            if !instance.is_confirmed() {
                instance.block = None;
                instance.block_digest = None;
                instance.prepare_voted = false;
                instance.commit_voted = false;
                instance.notarization = None;
                instance.notarization_digest = None;
                instance.state = BlockState::Proposed;
                instance.missing_links.clear();
            }
        }
        self.confirmed_at_last_check = self.confirmed_requests;
    }
}

impl LeopardReplica {
    /// Arms all periodic timers (at start, and again after a crash-restart — pre-crash
    /// timers die with the process).
    fn arm_timers(&mut self, ctx: &mut Ctx<'_>) {
        // Stagger the batch timer so system-wide datablock generation is spread evenly.
        //
        // The first fire lands at `stagger ∈ [0, interval)`, *not* at
        // `interval + stagger`: production must start immediately. With the paper's
        // saturated pacing the per-replica interval grows with `n · datablock_size`
        // (≈ 2.9 s at n = 128, ≈ 18 s at n = 600) — deferring the first datablock by a
        // full interval pushed it past the end of a 3 s run, which is exactly the
        // "Leopard confirms nothing at n ≥ 128" collapse: the leader's Ready queue
        // stayed empty forever while every downstream stage waited on it.
        let batch_interval = match self.config.workload {
            WorkloadMode::Saturated { pacing } => pacing,
            _ => self.config.batch_timeout,
        };
        let stagger = if batch_interval.as_nanos() > 0 {
            SimDuration::from_nanos(ctx.rng().gen_range(0..batch_interval.as_nanos()))
        } else {
            SimDuration::ZERO
        };
        ctx.set_timer(WORKLOAD_TICK, TOKEN_WORKLOAD);
        ctx.set_timer(stagger, TOKEN_BATCH);
        ctx.set_timer(self.config.propose_interval, TOKEN_PROPOSE);
        ctx.set_timer(self.config.progress_timeout, TOKEN_PROGRESS);
        ctx.set_timer(self.config.retrieval_timeout, TOKEN_RETRIEVAL);
    }
}

impl Protocol for LeopardReplica {
    type Message = LeopardMessage;

    fn on_start(&mut self, ctx: &mut dyn Context<Message = LeopardMessage>) {
        self.arm_timers(ctx);
    }

    fn on_restart(&mut self, ctx: &mut dyn Context<Message = LeopardMessage>) {
        self.arm_timers(ctx);
        // Rejoin via state transfer instead of replaying from genesis: peers answer
        // with their stable checkpoint proof and the confirmed blocks above it.
        self.begin_state_sync(ctx);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        message: LeopardMessage,
        ctx: &mut dyn Context<Message = LeopardMessage>,
    ) {
        match message {
            LeopardMessage::Datablock(datablock) => self.handle_datablock(from, datablock, ctx),
            LeopardMessage::Ready { digest } => self.handle_ready(from, digest, ctx),
            LeopardMessage::PrePrepare { block, share } => {
                self.handle_pre_prepare(from, block, share, ctx)
            }
            LeopardMessage::PrepareVote {
                seq,
                block_digest,
                share,
            } => self.handle_prepare_vote(from, seq, block_digest, share, ctx),
            LeopardMessage::NotarizationProof {
                seq,
                block_digest,
                proof,
            } => self.handle_notarization(seq, block_digest, proof, ctx),
            LeopardMessage::CommitVote {
                seq,
                proof_digest,
                share,
            } => self.handle_commit_vote(from, seq, proof_digest, share, ctx),
            LeopardMessage::ConfirmationProof {
                seq,
                proof_digest,
                proof,
            } => self.handle_confirmation(seq, proof_digest, proof, ctx),
            LeopardMessage::Query { digests } => self.handle_query(from, digests, ctx),
            LeopardMessage::QueryResponse {
                digest,
                root,
                shard_index,
                payload,
                payload_len,
            } => self.handle_query_response(digest, root, shard_index, payload, payload_len, ctx),
            LeopardMessage::Checkpoint {
                seq,
                state_digest,
                share,
            } => self.handle_checkpoint_share(from, seq, state_digest, share, ctx),
            LeopardMessage::CheckpointProof {
                seq,
                state_digest,
                proof,
            } => self.handle_checkpoint_proof(seq, state_digest, proof, ctx),
            LeopardMessage::Timeout { view, share } => self.handle_timeout(from, view, share, ctx),
            LeopardMessage::ViewChange {
                new_view,
                checkpoint_seq,
                notarized,
            } => self.handle_view_change(from, new_view, checkpoint_seq, notarized, ctx),
            LeopardMessage::NewView {
                view,
                view_change_count,
                ..
            } => self.handle_new_view(from, view, view_change_count, ctx),
            LeopardMessage::StateRequest { last_executed } => {
                self.handle_state_request(from, last_executed, ctx)
            }
            LeopardMessage::StateResponse {
                view,
                checkpoint_seq,
                checkpoint_state,
                checkpoint_proof,
                entries,
            } => self.handle_state_response(
                view,
                checkpoint_seq,
                checkpoint_state,
                checkpoint_proof,
                entries,
                ctx,
            ),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut dyn Context<Message = LeopardMessage>) {
        match token {
            TOKEN_WORKLOAD => {
                self.inject_workload(ctx);
                ctx.set_timer(WORKLOAD_TICK, TOKEN_WORKLOAD);
            }
            TOKEN_BATCH => {
                self.generate_datablocks(ctx);
                let interval = match self.config.workload {
                    WorkloadMode::Saturated { pacing } => pacing,
                    _ => self.config.batch_timeout,
                };
                ctx.set_timer(interval, TOKEN_BATCH);
            }
            TOKEN_PROPOSE => {
                // The batch-flush tick: the pipeline is event-driven (see `propose`);
                // the periodic tick bounds how long a partial batch waits and guards
                // against a missed wake-up.
                self.propose(ctx, true);
                ctx.set_timer(self.config.propose_interval, TOKEN_PROPOSE);
            }
            TOKEN_PROGRESS => {
                self.fire_progress_timer(ctx);
                ctx.set_timer(self.config.progress_timeout, TOKEN_PROGRESS);
            }
            TOKEN_RETRIEVAL => {
                self.fire_retrieval_timer(ctx);
                ctx.set_timer(self.config.retrieval_timeout, TOKEN_RETRIEVAL);
            }
            _ => {}
        }
    }

    fn progress_probe(&self, now: SimTime) -> Option<ProgressProbe> {
        let guard = self.current_stall();
        // A guard snapshot alone is not a stall: between two datablock arrivals the
        // leader legitimately sits on `AwaitingReady`. Report a stall only when the
        // guard blocks *and* nothing has confirmed for a full progress-timeout window.
        let making_progress = self
            .last_confirmation_at
            .map(|at| now.saturating_since(at) < self.config.progress_timeout)
            .unwrap_or(false);
        let stall = if guard == StallReason::None || making_progress {
            StallReason::None
        } else {
            guard
        };
        let stalled_since = if stall == StallReason::None {
            None
        } else if self.stall_guard == guard {
            Some(self.stall_guard_since)
        } else {
            Some(now)
        };
        Some(ProgressProbe {
            last_confirmation_at: self.last_confirmation_at,
            stall: stall.as_str(),
            stalled_since,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_simnet::{FaultPlan, NetworkConfig, Simulation};

    fn run_small(
        n: usize,
        config_for: impl Fn(NodeId) -> LeopardConfig,
        faults: FaultPlan,
        secs: u64,
    ) -> (leopard_simnet::SimulationReport, Vec<LeopardConfig>) {
        let base = LeopardConfig::small_test(n);
        let shared = LeopardConfig::shared_keys(&base, 7);
        let configs: Vec<LeopardConfig> = (0..n).map(|i| config_for(NodeId(i as u32))).collect();
        let configs_clone = configs.clone();
        let sim = Simulation::new(NetworkConfig::datacenter(n), faults, move |id| {
            LeopardReplica::new(id, configs_clone[id.as_index()].clone(), shared.clone())
        });
        let report = sim.run_to_report(
            SimTime(SimDuration::from_secs(secs).as_nanos()),
            10_000_000,
        );
        (report, configs)
    }

    #[test]
    fn four_replicas_confirm_requests() {
        let (report, _) = run_small(4, |_| LeopardConfig::small_test(4), FaultPlan::none(), 2);
        assert!(report.metrics.max_confirmed_requests(4) > 100);
        // Every replica confirms (not only the leader).
        for node in 0..4u32 {
            assert!(
                report.metrics.confirmed_requests_at(NodeId(node)) > 0,
                "replica {node} confirmed nothing"
            );
        }
        // Latency samples exist (clients got acknowledgements).
        assert!(!report.metrics.latency_samples().is_empty());
    }

    #[test]
    fn seven_replicas_confirm_requests() {
        let (report, _) = run_small(7, |_| LeopardConfig::small_test(7), FaultPlan::none(), 2);
        assert!(report.metrics.max_confirmed_requests(7) > 100);
    }

    #[test]
    fn withholding_votes_by_f_replicas_does_not_stop_progress() {
        let n = 7; // f = 2
        let (report, _) = run_small(
            n,
            |id| {
                let config = LeopardConfig::small_test(n);
                if id.as_index() >= n - 2 {
                    config.with_byzantine(ByzantineBehavior::WithholdVotes)
                } else {
                    config
                }
            },
            FaultPlan::none(),
            2,
        );
        assert!(report.metrics.max_confirmed_requests(n) > 100);
    }

    #[test]
    fn equivocating_leader_cannot_violate_safety() {
        let n = 4;
        let (report, _) = run_small(
            n,
            |id| {
                let config = LeopardConfig::small_test(n);
                // View 1's leader is replica 1.
                if id == NodeId(1) {
                    config.with_byzantine(ByzantineBehavior::EquivocatingLeader)
                } else {
                    config
                }
            },
            FaultPlan::none(),
            2,
        );
        // Safety: for every sequence number, all replicas that committed a block at that
        // sequence committed a block with the same request count. (The detailed
        // block-equality check lives in the integration tests where replica state is
        // accessible; here we check that nothing paniced and progress was not required.)
        let _ = report;
    }

    #[test]
    fn silent_leader_triggers_view_change_and_recovery() {
        let n = 4;
        let (report, _) = run_small(
            n,
            |id| {
                let config = LeopardConfig::small_test(n);
                if id == NodeId(1) {
                    // Replica 1 leads view 1 and stays silent.
                    config.with_byzantine(ByzantineBehavior::SilentLeader)
                } else {
                    config
                }
            },
            FaultPlan::none(),
            6,
        );
        // A view change happened...
        let view_changes: Vec<_> = report
            .metrics
            .observations
            .iter()
            .filter(|o| matches!(o.kind, ObservationKind::ViewChange { .. }))
            .collect();
        assert!(!view_changes.is_empty(), "no view change was observed");
        // ...and requests are confirmed afterwards under the new leader.
        assert!(report.metrics.max_confirmed_requests(n) > 0);
    }

    #[test]
    fn crash_restarted_replica_catches_up_via_state_transfer() {
        let n = 4;
        // Replica 2 (a non-leader) is down for [1s, 2s); the other three keep the
        // quorum, so confirmation continues while it is dark.
        let faults = FaultPlan::none().with_crash_restart(
            NodeId(2),
            SimTime(SimDuration::from_secs(1).as_nanos()),
            SimTime(SimDuration::from_secs(2).as_nanos()),
        );
        let (report, _) = run_small(n, |_| LeopardConfig::small_test(n), faults, 5);
        assert!(report.metrics.max_confirmed_requests(n) > 100);
        // The restarted replica asked for state transfer and got answers.
        assert!(
            report.metrics.traffic.sent_bytes_in(NodeId(2), "statesync") > 0,
            "restarted replica sent no state request"
        );
        assert!(
            report.metrics.traffic.received_bytes_in(NodeId(2), "statesync") > 0,
            "restarted replica received no state response"
        );
        // It resumes executing after the restart instead of staying dark.
        let restart = SimTime(SimDuration::from_secs(2).as_nanos());
        let resumed = report.metrics.observations.iter().any(|o| {
            o.node == NodeId(2)
                && o.at > restart
                && matches!(o.kind, ObservationKind::RequestsConfirmed { .. })
        });
        assert!(resumed, "restarted replica never confirmed after rejoining");
    }

    #[test]
    fn selective_attack_is_survived_via_retrieval() {
        let n = 4;
        // Replica 3 sends its datablocks only to the leader (replica 1) and replica 0.
        let faults = FaultPlan::selective_attack(vec![NodeId(3)], "datablock", 2);
        let (report, _) = run_small(n, |_| LeopardConfig::small_test(n), faults, 4);
        assert!(report.metrics.max_confirmed_requests(n) > 0);
    }
}
