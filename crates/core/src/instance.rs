//! Per-serial-number agreement instance bookkeeping (Algorithm 2), for both the leader
//! and non-leader replicas.

use leopard_crypto::threshold::{CombinedSignature, SignatureShare};
use leopard_crypto::Digest;
use leopard_simnet::SimTime;
use leopard_types::{BftBlock, BlockState, FastSet};
use std::sync::Arc;

/// A set of signature shares with signer de-duplication.
#[derive(Debug, Default, Clone)]
pub struct ShareCollector {
    shares: Vec<SignatureShare>,
    signers: FastSet<usize>,
}

impl ShareCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a share unless the signer already contributed; returns the new count.
    pub fn add(&mut self, share: SignatureShare) -> usize {
        if self.signers.insert(share.signer) {
            self.shares.push(share);
        }
        self.shares.len()
    }

    /// Number of distinct shares collected.
    pub fn len(&self) -> usize {
        self.shares.len()
    }

    /// True if no shares were collected.
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }

    /// Borrows the collected shares.
    pub fn shares(&self) -> &[SignatureShare] {
        &self.shares
    }

    /// Drops the shares of the given signers after a failed batch verification located
    /// them as forged. The signers stay *marked* as having contributed: an honest
    /// signer sends at most one share, so a replacement can only be the same forgery
    /// again — keeping the mark stops a replayed forgery from re-triggering a batch
    /// check on every arrival. The quorum re-forms from the remaining honest voters.
    pub fn remove_signers(&mut self, signers: &[usize]) {
        self.shares.retain(|share| !signers.contains(&share.signer));
    }
}

/// The leader's state for one agreement instance.
///
/// Leader instances live inside [`crate::pipeline::Pipeline`], which maintains an O(1)
/// count of unconfirmed instances: set `confirmation` through
/// [`crate::pipeline::Pipeline::record_confirmation`], not by writing the field
/// directly, or the counter drifts.
#[derive(Debug)]
pub struct LeaderInstance {
    /// The proposed block.
    pub block: Arc<BftBlock>,
    /// Digest of the proposed block (the message of the first voting round).
    pub block_digest: Digest,
    /// First-round (prepare) shares.
    pub prepares: ShareCollector,
    /// The notarization proof once formed.
    pub notarization: Option<CombinedSignature>,
    /// Digest of the notarization proof (the message of the second voting round).
    pub notarization_digest: Option<Digest>,
    /// Second-round (commit) shares.
    pub commits: ShareCollector,
    /// The confirmation proof once formed.
    pub confirmation: Option<CombinedSignature>,
    /// When the instance was proposed (for latency accounting).
    pub proposed_at: SimTime,
}

impl LeaderInstance {
    /// Creates the leader-side state for a freshly proposed block.
    pub fn new(block: Arc<BftBlock>, proposed_at: SimTime) -> Self {
        let block_digest = block.digest();
        Self {
            block,
            block_digest,
            prepares: ShareCollector::new(),
            notarization: None,
            notarization_digest: None,
            commits: ShareCollector::new(),
            confirmation: None,
            proposed_at,
        }
    }

    /// True once the confirmation proof exists.
    pub fn is_confirmed(&self) -> bool {
        self.confirmation.is_some()
    }
}

/// A non-leader replica's state for one agreement instance.
#[derive(Debug)]
pub struct ReplicaInstance {
    /// The block, once received (a replica can learn the serial number from votes or a
    /// view-change before seeing the block itself).
    pub block: Option<Arc<BftBlock>>,
    /// Digest of the block, once known.
    pub block_digest: Option<Digest>,
    /// Protocol state of the block.
    pub state: BlockState,
    /// True once the first-round vote was cast (an honest replica votes at most once per
    /// serial number and view — the safety argument relies on this).
    pub prepare_voted: bool,
    /// True once the second-round vote was cast.
    pub commit_voted: bool,
    /// Digests of linked datablocks this replica has not received yet.
    pub missing_links: FastSet<Digest>,
    /// The notarization proof once received.
    pub notarization: Option<CombinedSignature>,
    /// Digest of the notarization proof.
    pub notarization_digest: Option<Digest>,
    /// The confirmation proof once received.
    pub confirmation: Option<CombinedSignature>,
    /// When the block was first received.
    pub received_at: Option<SimTime>,
    /// Digest of a later view's re-proposal of the *same content* this instance
    /// already confirmed, endorsed with a prepare vote (a commit vote follows its
    /// notarization, then this clears). A view change re-stamps surviving blocks
    /// with the new view, which changes the digest; replicas that already confirmed
    /// the block must still vote for the identical-content twin or replicas that
    /// missed the original confirmation could never assemble a quorum for the serial
    /// number again. The confirmed state above is never touched by an endorsement.
    pub endorsed_repropose: Option<Digest>,
}

impl Default for ReplicaInstance {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplicaInstance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self {
            block: None,
            block_digest: None,
            state: BlockState::Proposed,
            prepare_voted: false,
            commit_voted: false,
            missing_links: FastSet::default(),
            notarization: None,
            notarization_digest: None,
            confirmation: None,
            received_at: None,
            endorsed_repropose: None,
        }
    }

    /// True once every linked datablock is locally available.
    pub fn links_complete(&self) -> bool {
        self.missing_links.is_empty()
    }

    /// True once the block is confirmed.
    pub fn is_confirmed(&self) -> bool {
        self.state == BlockState::Confirmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_crypto::hash_bytes;
    use leopard_crypto::threshold::ThresholdScheme;
    use leopard_types::{SeqNum, View};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn share_collector_deduplicates_by_signer() {
        let mut rng = StdRng::seed_from_u64(3);
        let (scheme, keys) = ThresholdScheme::trusted_setup(3, 4, &mut rng);
        let msg = hash_bytes(b"block");
        let mut collector = ShareCollector::new();
        assert!(collector.is_empty());
        assert_eq!(collector.add(scheme.sign_share(&keys[0], &msg)), 1);
        assert_eq!(collector.add(scheme.sign_share(&keys[0], &msg)), 1);
        assert_eq!(collector.add(scheme.sign_share(&keys[1], &msg)), 2);
        assert_eq!(collector.add(scheme.sign_share(&keys[2], &msg)), 3);
        assert_eq!(collector.len(), 3);
        assert!(scheme.combine(collector.shares(), &msg).is_ok());
    }

    #[test]
    fn leader_instance_tracks_confirmation() {
        let block = Arc::new(BftBlock::new(View(1), SeqNum(1), vec![]));
        let instance = LeaderInstance::new(block.clone(), SimTime(5));
        assert_eq!(instance.block_digest, block.digest());
        assert!(!instance.is_confirmed());
        assert_eq!(instance.proposed_at, SimTime(5));
    }

    #[test]
    fn replica_instance_defaults() {
        let instance = ReplicaInstance::new();
        assert!(instance.links_complete());
        assert!(!instance.is_confirmed());
        assert_eq!(instance.state, BlockState::Proposed);
        assert!(!instance.prepare_voted);
        let default_instance = ReplicaInstance::default();
        assert_eq!(default_instance.state, instance.state);
    }
}
