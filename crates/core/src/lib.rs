//! The Leopard BFT protocol (the paper's primary contribution).
//!
//! Leopard is a leader-based, partially-synchronous BFT protocol that preserves high
//! throughput as the number of replicas grows. It does so by decoupling consensus
//! proposals into two planes:
//!
//! * **datablocks** — batches of client requests, produced and multicast by *every*
//!   non-leader replica ([`mempool`], Algorithm 1 of the paper);
//! * **BFTblocks** — tiny index blocks containing only datablock hashes, proposed by the
//!   leader and agreed on with a PBFT-style two-round voting protocol whose votes are
//!   aggregated with threshold signatures ([`instance`], Algorithm 2).
//!
//! Liveness against faulty datablock producers is restored by a **ready round** (the
//! leader only links datablocks for which `2f+1` replicas acknowledged receipt) plus a
//! **retrieval mechanism** based on `(f+1, n)` erasure codes and Merkle proofs
//! ([`retrieval`], Algorithm 3). Checkpoints ([`checkpoint`], Algorithm 4) garbage-
//! collect the pools and advance the watermark window; a PBFT-style view-change
//! ([`view_change`]) replaces faulty leaders.
//!
//! The replica is a sans-IO state machine ([`replica::LeopardReplica`]) implementing
//! [`leopard_simnet::Protocol`], so it runs both under the bandwidth-accurate simulator
//! and under the thread-based real-time runtime.
//!
//! ```
//! use leopard_core::{config::LeopardConfig, replica::LeopardReplica};
//! use leopard_simnet::{FaultPlan, NetworkConfig, SimDuration, SimTime, Simulation};
//!
//! let config = LeopardConfig::small_test(4);
//! let shared = LeopardConfig::shared_keys(&config, 42);
//! let sim = Simulation::new(
//!     NetworkConfig::datacenter(4),
//!     FaultPlan::none(),
//!     |id| LeopardReplica::new(id, config.clone(), shared.clone()),
//! );
//! let report = sim.run_to_report(SimTime(SimDuration::from_secs(2).as_nanos()), 2_000_000);
//! assert!(report.metrics.max_confirmed_requests(4) > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
pub mod checkpoint;
pub mod config;
pub mod instance;
pub mod mempool;
pub mod messages;
pub mod pipeline;
pub mod pool;
pub mod replica;
pub mod retrieval;
pub mod view_change;

pub use config::{LeopardConfig, SharedKeys, WorkloadMode};
pub use messages::LeopardMessage;
pub use pipeline::{Pipeline, StallReason};
pub use replica::LeopardReplica;
