//! The messages exchanged by Leopard replicas, with wire-size accounting and the
//! category labels used by the bandwidth-utilisation breakdown (Table III).
//!
//! Large payloads (datablocks, BFTblocks) are wrapped in [`Arc`] so that multicasting to
//! hundreds of peers in the simulator clones a pointer, not the payload.

use leopard_crypto::threshold::{CombinedSignature, SignatureShare};
use leopard_crypto::{Digest, MerkleProof};
use leopard_simnet::SimMessage;
use leopard_types::{BftBlock, Datablock, SeqNum, View, WireSize};
use std::sync::Arc;

/// Size in bytes of a signature share or combined signature on the wire (`κ`).
pub const VOTE_WIRE_BYTES: usize = 48;
/// Size in bytes of a digest on the wire (`β`).
pub const DIGEST_WIRE_BYTES: usize = 32;

/// The payload of one retrieval response (Algorithm 3).
///
/// The real variant carries an erasure-coded chunk plus its Merkle inclusion proof.
/// The metered variant (see `leopard_crypto::provider::CryptoMode::Metered`) skips the
/// erasure encoding and Merkle hashing entirely: it transports the datablock by
/// `Arc`-reference while *declaring* exactly the wire bytes the real chunk and proof
/// would occupy, so bandwidth accounting, event schedules and retrieval-cost figures
/// are identical between the two modes. Metered responses are honest by construction —
/// Byzantine chunk-forgery experiments must run with real crypto.
#[derive(Debug, Clone)]
pub enum RetrievalPayload {
    /// A real erasure-coded chunk with its Merkle proof.
    Real {
        /// The chunk bytes.
        chunk: Vec<u8>,
        /// Merkle inclusion proof of the chunk.
        proof: MerkleProof,
    },
    /// The metered stand-in: declared sizes plus the datablock itself by reference.
    Metered {
        /// Wire bytes the real chunk would occupy.
        chunk_len: u32,
        /// Wire bytes the real Merkle proof would occupy.
        proof_len: u32,
        /// The datablock being recovered (local reference, never deep-copied).
        datablock: Arc<Datablock>,
    },
}

impl RetrievalPayload {
    /// Bytes this payload occupies on the wire (identical between the two variants for
    /// the same datablock, code parameters and responder).
    pub fn wire_len(&self) -> usize {
        match self {
            RetrievalPayload::Real { chunk, proof } => chunk.len() + proof.wire_size(),
            RetrievalPayload::Metered {
                chunk_len,
                proof_len,
                ..
            } => *chunk_len as usize + *proof_len as usize,
        }
    }
}

/// A notarized BFTblock carried by view-change and new-view messages: the block plus its
/// notarization proof.
#[derive(Debug, Clone)]
pub struct NotarizedEntry {
    /// The notarized BFTblock.
    pub block: Arc<BftBlock>,
    /// The notarization proof (first-round combined signature).
    pub proof: CombinedSignature,
}

impl WireSize for NotarizedEntry {
    fn wire_size(&self) -> usize {
        self.block.wire_size() + VOTE_WIRE_BYTES
    }
}

/// A confirmed BFTblock carried by a state-transfer response: the block plus the two
/// proofs a requester needs to accept it without having voted — the notarization (to
/// recompute the second-round message) and the confirmation over it.
#[derive(Debug, Clone)]
pub struct ConfirmedEntry {
    /// The confirmed BFTblock.
    pub block: Arc<BftBlock>,
    /// The notarization proof (first-round combined signature).
    pub notarization: CombinedSignature,
    /// The confirmation proof (second-round combined signature).
    pub confirmation: CombinedSignature,
}

impl WireSize for ConfirmedEntry {
    fn wire_size(&self) -> usize {
        self.block.wire_size() + 2 * VOTE_WIRE_BYTES
    }
}

/// All messages of the Leopard protocol.
#[derive(Debug, Clone)]
pub enum LeopardMessage {
    /// Algorithm 1: a datablock multicast by its producer.
    Datablock(Arc<Datablock>),
    /// Algorithm 3 (ready round): acknowledgement that the sender stores the datablock.
    Ready {
        /// Digest of the acknowledged datablock.
        digest: Digest,
    },
    /// Algorithm 2, pre-prepare: the leader proposes a BFTblock (with its own signature
    /// share on it).
    PrePrepare {
        /// The proposed BFTblock.
        block: Arc<BftBlock>,
        /// The leader's signature share on the block digest.
        share: SignatureShare,
    },
    /// Algorithm 2, prepare: a replica's first-round vote, sent to the leader.
    PrepareVote {
        /// Serial number of the voted block.
        seq: SeqNum,
        /// Digest of the voted block.
        block_digest: Digest,
        /// The voter's signature share on the block digest.
        share: SignatureShare,
    },
    /// Algorithm 2, notarize: the combined first-round proof, multicast by the leader.
    NotarizationProof {
        /// Serial number of the notarized block.
        seq: SeqNum,
        /// Digest of the notarized block.
        block_digest: Digest,
        /// The notarization proof.
        proof: CombinedSignature,
    },
    /// Algorithm 2, commit: a replica's second-round vote on the notarization proof.
    CommitVote {
        /// Serial number of the block.
        seq: SeqNum,
        /// Digest of the notarization proof being signed.
        proof_digest: Digest,
        /// The voter's signature share.
        share: SignatureShare,
    },
    /// Algorithm 2, confirm: the combined second-round proof, multicast by the leader.
    ConfirmationProof {
        /// Serial number of the confirmed block.
        seq: SeqNum,
        /// Digest of the notarization proof that was signed.
        proof_digest: Digest,
        /// The confirmation proof.
        proof: CombinedSignature,
    },
    /// Algorithm 3: a query for missing datablocks, multicast by the replica that needs
    /// them.
    Query {
        /// Digests of the missing datablocks.
        digests: Vec<Digest>,
    },
    /// Algorithm 3: one erasure-coded chunk of a queried datablock plus its Merkle proof
    /// (or the metered stand-in occupying identical wire bytes).
    QueryResponse {
        /// Digest of the datablock being recovered.
        digest: Digest,
        /// Merkle root over the erasure-coded chunks.
        root: Digest,
        /// Index of this chunk (the responder's replica index).
        shard_index: u32,
        /// The chunk itself (real or metered).
        payload: RetrievalPayload,
        /// Length of the encoded datablock, needed to strip the padding after decoding.
        payload_len: u64,
    },
    /// Algorithm 4: a replica's checkpoint vote.
    Checkpoint {
        /// Serial number of the latest executed BFTblock.
        seq: SeqNum,
        /// Digest of the execution state.
        state_digest: Digest,
        /// The replica's signature share on the checkpoint.
        share: SignatureShare,
    },
    /// Algorithm 4: the combined checkpoint proof, multicast by the leader.
    CheckpointProof {
        /// Serial number of the checkpointed BFTblock.
        seq: SeqNum,
        /// Digest of the execution state.
        state_digest: Digest,
        /// The checkpoint proof.
        proof: CombinedSignature,
    },
    /// View-change trigger: a replica complains that view `view` is not making progress.
    Timeout {
        /// The view being complained about.
        view: View,
        /// The complainer's signature share on the timeout statement.
        share: SignatureShare,
    },
    /// State synchronisation: sent to the next leader when a replica gives up on the
    /// current view.
    ViewChange {
        /// The view the sender wants to move to.
        new_view: View,
        /// Serial number of the sender's latest stable checkpoint.
        checkpoint_seq: SeqNum,
        /// Notarized (or confirmed) BFTblocks above the checkpoint, with proofs.
        notarized: Vec<NotarizedEntry>,
    },
    /// The next leader's new-view message carrying `2f+1` view-change messages (their
    /// aggregate size is accounted, their contents summarised by `blocks`).
    NewView {
        /// The new view.
        view: View,
        /// Number of view-change messages aggregated (for size accounting).
        view_change_count: u32,
        /// Total wire bytes of the aggregated view-change messages.
        view_change_bytes: u64,
        /// The blocks to re-propose in the new view.
        blocks: Vec<NotarizedEntry>,
    },
    /// State transfer: a replica that rebooted (or fell behind a watermark advance)
    /// asks peers for everything confirmed past its own execution point.
    StateRequest {
        /// Serial number of the requester's latest executed BFTblock.
        last_executed: SeqNum,
    },
    /// State transfer: a peer's answer — its stable checkpoint (with proof) plus the
    /// confirmed blocks above it, each carried with both agreement proofs.
    StateResponse {
        /// The responder's current view (lets a rebooted replica rejoin after missing a
        /// view change).
        view: View,
        /// Serial number of the responder's stable checkpoint.
        checkpoint_seq: SeqNum,
        /// Execution-state digest of that checkpoint.
        checkpoint_state: Digest,
        /// The checkpoint proof; `None` only while the responder is still at the
        /// genesis checkpoint (seq 0), which needs no proof.
        checkpoint_proof: Option<CombinedSignature>,
        /// Confirmed blocks above the requester's execution point, with proofs.
        entries: Vec<ConfirmedEntry>,
    },
}

impl WireSize for LeopardMessage {
    fn wire_size(&self) -> usize {
        match self {
            LeopardMessage::Datablock(db) => db.wire_size(),
            LeopardMessage::Ready { .. } => DIGEST_WIRE_BYTES + 8,
            LeopardMessage::PrePrepare { block, .. } => block.wire_size() + VOTE_WIRE_BYTES,
            LeopardMessage::PrepareVote { .. } => 8 + DIGEST_WIRE_BYTES + VOTE_WIRE_BYTES,
            LeopardMessage::NotarizationProof { .. } => 8 + DIGEST_WIRE_BYTES + VOTE_WIRE_BYTES,
            LeopardMessage::CommitVote { .. } => 8 + DIGEST_WIRE_BYTES + VOTE_WIRE_BYTES,
            LeopardMessage::ConfirmationProof { .. } => 8 + DIGEST_WIRE_BYTES + VOTE_WIRE_BYTES,
            LeopardMessage::Query { digests } => 4 + DIGEST_WIRE_BYTES * digests.len(),
            LeopardMessage::QueryResponse { payload, .. } => {
                2 * DIGEST_WIRE_BYTES + 4 + 8 + payload.wire_len()
            }
            LeopardMessage::Checkpoint { .. } => 8 + DIGEST_WIRE_BYTES + VOTE_WIRE_BYTES,
            LeopardMessage::CheckpointProof { .. } => 8 + DIGEST_WIRE_BYTES + VOTE_WIRE_BYTES,
            LeopardMessage::Timeout { .. } => 8 + VOTE_WIRE_BYTES,
            LeopardMessage::ViewChange { notarized, .. } => {
                8 + 8 + notarized.iter().map(WireSize::wire_size).sum::<usize>()
            }
            LeopardMessage::NewView {
                view_change_bytes,
                blocks,
                ..
            } => 8 + 4 + *view_change_bytes as usize + blocks.iter().map(WireSize::wire_size).sum::<usize>(),
            LeopardMessage::StateRequest { .. } => 8,
            LeopardMessage::StateResponse {
                checkpoint_proof,
                entries,
                ..
            } => {
                8 + 8
                    + DIGEST_WIRE_BYTES
                    + checkpoint_proof.map_or(0, |_| VOTE_WIRE_BYTES)
                    + entries.iter().map(WireSize::wire_size).sum::<usize>()
            }
        }
    }
}

impl SimMessage for LeopardMessage {
    fn category(&self) -> &'static str {
        match self {
            LeopardMessage::Datablock(_) => "datablock",
            LeopardMessage::Ready { .. } => "ready",
            LeopardMessage::PrePrepare { .. } => "bftblock",
            LeopardMessage::PrepareVote { .. } | LeopardMessage::CommitVote { .. } => "vote",
            LeopardMessage::NotarizationProof { .. } | LeopardMessage::ConfirmationProof { .. } => {
                "proof"
            }
            LeopardMessage::Query { .. } => "query",
            LeopardMessage::QueryResponse { .. } => "retrieval",
            LeopardMessage::Checkpoint { .. } | LeopardMessage::CheckpointProof { .. } => {
                "checkpoint"
            }
            LeopardMessage::Timeout { .. }
            | LeopardMessage::ViewChange { .. }
            | LeopardMessage::NewView { .. } => "viewchange",
            LeopardMessage::StateRequest { .. } | LeopardMessage::StateResponse { .. } => {
                "statesync"
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_crypto::hash_bytes;
    use leopard_crypto::threshold::ThresholdScheme;
    use leopard_types::{ClientId, NodeId, Request};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_share() -> (SignatureShare, CombinedSignature) {
        let mut rng = StdRng::seed_from_u64(1);
        let (scheme, keys) = ThresholdScheme::trusted_setup(3, 4, &mut rng);
        let msg = hash_bytes(b"m");
        let shares: Vec<_> = keys.iter().map(|k| scheme.sign_share(k, &msg)).collect();
        let proof = scheme.combine(&shares[..3], &msg).unwrap();
        (shares[0], proof)
    }

    #[test]
    fn categories_cover_all_variants() {
        let (share, proof) = sample_share();
        let db = Arc::new(Datablock::new(
            NodeId(1),
            1,
            vec![Request::new_synthetic(ClientId(0), 0, 128)],
        ));
        let block = Arc::new(BftBlock::new(View(1), SeqNum(1), vec![db.digest()]));
        let digest = db.digest();

        let cases: Vec<(LeopardMessage, &str)> = vec![
            (LeopardMessage::Datablock(db.clone()), "datablock"),
            (LeopardMessage::Ready { digest }, "ready"),
            (
                LeopardMessage::PrePrepare {
                    block: block.clone(),
                    share,
                },
                "bftblock",
            ),
            (
                LeopardMessage::PrepareVote {
                    seq: SeqNum(1),
                    block_digest: digest,
                    share,
                },
                "vote",
            ),
            (
                LeopardMessage::NotarizationProof {
                    seq: SeqNum(1),
                    block_digest: digest,
                    proof,
                },
                "proof",
            ),
            (
                LeopardMessage::CommitVote {
                    seq: SeqNum(1),
                    proof_digest: digest,
                    share,
                },
                "vote",
            ),
            (
                LeopardMessage::ConfirmationProof {
                    seq: SeqNum(1),
                    proof_digest: digest,
                    proof,
                },
                "proof",
            ),
            (LeopardMessage::Query { digests: vec![digest] }, "query"),
            (
                LeopardMessage::Checkpoint {
                    seq: SeqNum(2),
                    state_digest: digest,
                    share,
                },
                "checkpoint",
            ),
            (
                LeopardMessage::CheckpointProof {
                    seq: SeqNum(2),
                    state_digest: digest,
                    proof,
                },
                "checkpoint",
            ),
            (
                LeopardMessage::Timeout {
                    view: View(1),
                    share,
                },
                "viewchange",
            ),
            (
                LeopardMessage::ViewChange {
                    new_view: View(2),
                    checkpoint_seq: SeqNum(0),
                    notarized: vec![NotarizedEntry {
                        block: block.clone(),
                        proof,
                    }],
                },
                "viewchange",
            ),
            (
                LeopardMessage::NewView {
                    view: View(2),
                    view_change_count: 3,
                    view_change_bytes: 300,
                    blocks: vec![],
                },
                "viewchange",
            ),
            (
                LeopardMessage::StateRequest {
                    last_executed: SeqNum(4),
                },
                "statesync",
            ),
            (
                LeopardMessage::StateResponse {
                    view: View(1),
                    checkpoint_seq: SeqNum(8),
                    checkpoint_state: digest,
                    checkpoint_proof: Some(proof),
                    entries: vec![ConfirmedEntry {
                        block: block.clone(),
                        notarization: proof,
                        confirmation: proof,
                    }],
                },
                "statesync",
            ),
        ];
        for (message, expected) in cases {
            assert_eq!(message.category(), expected);
            assert!(message.wire_size() > 0);
        }
    }

    #[test]
    fn bftblock_messages_are_much_smaller_than_datablocks() {
        let (share, _) = sample_share();
        let requests: Vec<Request> = (0..2000)
            .map(|i| Request::new_synthetic(ClientId(0), i, 128))
            .collect();
        let db = Arc::new(Datablock::new(NodeId(1), 1, requests));
        let links: Vec<Digest> = (0..100u64).map(|i| hash_bytes(&i.to_le_bytes())).collect();
        let block = Arc::new(BftBlock::new(View(1), SeqNum(1), links));

        let datablock_size = LeopardMessage::Datablock(db).wire_size();
        let preprepare_size = LeopardMessage::PrePrepare { block, share }.wire_size();
        assert!(datablock_size > 50 * preprepare_size);
    }

    #[test]
    fn query_size_scales_with_digest_count() {
        let one = LeopardMessage::Query {
            digests: vec![hash_bytes(b"a")],
        };
        let five = LeopardMessage::Query {
            digests: (0..5u8).map(|i| hash_bytes(&[i])).collect(),
        };
        assert_eq!(five.wire_size() - one.wire_size(), 4 * DIGEST_WIRE_BYTES);
    }

    #[test]
    fn state_response_accounts_for_carried_entries() {
        let (_, proof) = sample_share();
        let block = Arc::new(BftBlock::new(View(1), SeqNum(1), vec![hash_bytes(b"l")]));
        let entry = ConfirmedEntry {
            block,
            notarization: proof,
            confirmation: proof,
        };
        let empty = LeopardMessage::StateResponse {
            view: View(1),
            checkpoint_seq: SeqNum(0),
            checkpoint_state: hash_bytes(b"s"),
            checkpoint_proof: None,
            entries: vec![],
        };
        let loaded = LeopardMessage::StateResponse {
            view: View(1),
            checkpoint_seq: SeqNum(0),
            checkpoint_state: hash_bytes(b"s"),
            checkpoint_proof: Some(proof),
            entries: vec![entry.clone(), entry.clone()],
        };
        assert_eq!(
            loaded.wire_size() - empty.wire_size(),
            VOTE_WIRE_BYTES + 2 * entry.wire_size()
        );
    }

    #[test]
    fn new_view_accounts_for_carried_view_changes() {
        let small = LeopardMessage::NewView {
            view: View(2),
            view_change_count: 3,
            view_change_bytes: 100,
            blocks: vec![],
        };
        let large = LeopardMessage::NewView {
            view: View(2),
            view_change_count: 300,
            view_change_bytes: 100_000,
            blocks: vec![],
        };
        assert!(large.wire_size() > small.wire_size());
    }
}
