//! View-change bookkeeping (paper, Appendix A).
//!
//! The view-change has three steps: *trigger* (timeout messages), *leader rotation*
//! (round-robin, `(v mod n)`-th replica) and *state synchronisation* (view-change
//! messages carrying notarized BFTblocks above the stable checkpoint, answered by the
//! next leader's new-view message). This module holds the pure bookkeeping; the replica
//! state machine drives it.

use crate::messages::NotarizedEntry;
use leopard_crypto::{hash_parts, Digest};
use leopard_types::{FastMap, FastSet, NodeId, SeqNum, View, WireSize};
use std::collections::BTreeMap;

/// The digest a replica signs when complaining that `view` made no progress.
pub fn timeout_digest(view: View) -> Digest {
    hash_parts([b"timeout".as_slice(), &view.0.to_le_bytes()])
}

/// Bookkeeping for timeouts, view-change messages and new-view emission.
#[derive(Debug, Default)]
pub struct ViewChangeState {
    /// Which replicas sent a timeout for each view.
    timeouts: FastMap<u64, FastSet<NodeId>>,
    /// Views for which this replica already multicast its own timeout.
    complained: FastSet<u64>,
    /// Views this replica has already abandoned (sent its view-change message for).
    abandoned: FastSet<u64>,
    /// View-change messages received by the prospective leader of each view.
    view_changes: FastMap<u64, BTreeMap<u32, (SeqNum, Vec<NotarizedEntry>, usize)>>,
    /// Views for which this replica (as next leader) already sent a new-view.
    new_view_sent: FastSet<u64>,
}

impl ViewChangeState {
    /// Creates empty bookkeeping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a timeout complaint for `view` from `from`; returns the number of
    /// distinct complainers seen so far.
    pub fn record_timeout(&mut self, view: View, from: NodeId) -> usize {
        let set = self.timeouts.entry(view.0).or_default();
        set.insert(from);
        set.len()
    }

    /// Number of distinct timeout complaints recorded for `view`.
    pub fn timeout_count(&self, view: View) -> usize {
        self.timeouts.get(&view.0).map_or(0, FastSet::len)
    }

    /// Returns true the first time this replica decides to complain about `view`
    /// (subsequent calls return false so the timeout is multicast only once).
    pub fn mark_complained(&mut self, view: View) -> bool {
        self.complained.insert(view.0)
    }

    /// True if this replica already complained about `view`.
    pub fn has_complained(&self, view: View) -> bool {
        self.complained.contains(&view.0)
    }

    /// Returns true the first time this replica abandons `view` (sends its view-change
    /// message for `view + 1`).
    pub fn mark_abandoned(&mut self, view: View) -> bool {
        self.abandoned.insert(view.0)
    }

    /// Records a view-change message for `new_view` at the prospective leader.
    /// Returns the number of distinct senders recorded so far.
    pub fn record_view_change(
        &mut self,
        new_view: View,
        from: NodeId,
        checkpoint: SeqNum,
        entries: Vec<NotarizedEntry>,
        wire_bytes: usize,
    ) -> usize {
        let map = self.view_changes.entry(new_view.0).or_default();
        map.entry(from.0).or_insert((checkpoint, entries, wire_bytes));
        map.len()
    }

    /// Once `quorum` view-change messages for `new_view` are available, merges them into
    /// the new-view payload: for each serial number the entry with that number (from any
    /// view-change message) is selected, gaps between the highest stable checkpoint and
    /// the highest notarized serial number are reported so the caller can fill them with
    /// dummy blocks.
    ///
    /// Returns `None` until the quorum is reached or if a new-view was already produced
    /// for this view.
    pub fn build_new_view(
        &mut self,
        new_view: View,
        quorum: usize,
    ) -> Option<NewViewPayload> {
        if self.new_view_sent.contains(&new_view.0) {
            return None;
        }
        let map = self.view_changes.get(&new_view.0)?;
        if map.len() < quorum {
            return None;
        }
        self.new_view_sent.insert(new_view.0);

        let mut by_seq: BTreeMap<u64, NotarizedEntry> = BTreeMap::new();
        let mut max_checkpoint = SeqNum(0);
        let mut total_bytes = 0usize;
        for (_, (checkpoint, entries, bytes)) in map.iter() {
            max_checkpoint = max_checkpoint.max(*checkpoint);
            total_bytes += bytes;
            for entry in entries {
                by_seq.entry(entry.block.id.seq.0).or_insert_with(|| entry.clone());
            }
        }
        let highest = by_seq.keys().next_back().copied().unwrap_or(max_checkpoint.0);
        let mut gaps = Vec::new();
        for seq in (max_checkpoint.0 + 1)..=highest {
            if !by_seq.contains_key(&seq) {
                gaps.push(SeqNum(seq));
            }
        }
        Some(NewViewPayload {
            view: new_view,
            stable_checkpoint: max_checkpoint,
            entries: by_seq.into_values().collect(),
            gaps,
            view_change_count: map.len() as u32,
            view_change_bytes: total_bytes as u64,
        })
    }
}

/// The merged content of `2f+1` view-change messages, ready to be turned into a
/// new-view message by the next leader.
#[derive(Debug)]
pub struct NewViewPayload {
    /// The view being started.
    pub view: View,
    /// The highest stable checkpoint among the view-change messages.
    pub stable_checkpoint: SeqNum,
    /// Notarized blocks to re-propose, ordered by serial number.
    pub entries: Vec<NotarizedEntry>,
    /// Serial numbers between the checkpoint and the highest entry with no notarized
    /// block; they are filled with dummy blocks.
    pub gaps: Vec<SeqNum>,
    /// Number of view-change messages merged.
    pub view_change_count: u32,
    /// Total wire bytes of the merged view-change messages.
    pub view_change_bytes: u64,
}

/// Computes the wire size of a view-change message carrying the given entries (used for
/// the Fig. 13 communication accounting before the message is built).
pub fn view_change_wire_size(entries: &[NotarizedEntry]) -> usize {
    16 + entries.iter().map(WireSize::wire_size).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_crypto::threshold::ThresholdScheme;
    use leopard_types::BftBlock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn entry(seq: u64) -> NotarizedEntry {
        let mut rng = StdRng::seed_from_u64(seq);
        let (scheme, keys) = ThresholdScheme::trusted_setup(3, 4, &mut rng);
        let block = Arc::new(BftBlock::new(View(1), SeqNum(seq), vec![]));
        let digest = block.digest();
        let shares: Vec<_> = keys.iter().map(|k| scheme.sign_share(k, &digest)).collect();
        NotarizedEntry {
            block,
            proof: scheme.combine(&shares[..3], &digest).unwrap(),
        }
    }

    #[test]
    fn timeout_digest_differs_per_view() {
        assert_ne!(timeout_digest(View(1)), timeout_digest(View(2)));
        assert_eq!(timeout_digest(View(3)), timeout_digest(View(3)));
    }

    #[test]
    fn timeout_counting_deduplicates_senders() {
        let mut state = ViewChangeState::new();
        assert_eq!(state.record_timeout(View(1), NodeId(0)), 1);
        assert_eq!(state.record_timeout(View(1), NodeId(0)), 1);
        assert_eq!(state.record_timeout(View(1), NodeId(2)), 2);
        assert_eq!(state.timeout_count(View(1)), 2);
        assert_eq!(state.timeout_count(View(2)), 0);
    }

    #[test]
    fn complain_and_abandon_fire_once() {
        let mut state = ViewChangeState::new();
        assert!(state.mark_complained(View(1)));
        assert!(!state.mark_complained(View(1)));
        assert!(state.has_complained(View(1)));
        assert!(!state.has_complained(View(2)));
        assert!(state.mark_abandoned(View(1)));
        assert!(!state.mark_abandoned(View(1)));
    }

    #[test]
    fn new_view_needs_quorum_and_is_built_once() {
        let mut state = ViewChangeState::new();
        let e1 = entry(1);
        let e3 = entry(3);
        assert_eq!(
            state.record_view_change(View(2), NodeId(0), SeqNum(0), vec![e1.clone()], 100),
            1
        );
        assert!(state.build_new_view(View(2), 3).is_none());
        assert_eq!(
            state.record_view_change(View(2), NodeId(1), SeqNum(0), vec![e1.clone(), e3.clone()], 200),
            2
        );
        assert_eq!(
            state.record_view_change(View(2), NodeId(2), SeqNum(0), vec![e3.clone()], 150),
            3
        );
        let payload = state.build_new_view(View(2), 3).expect("quorum reached");
        assert_eq!(payload.view, View(2));
        assert_eq!(payload.entries.len(), 2);
        assert_eq!(payload.gaps, vec![SeqNum(2)]);
        assert_eq!(payload.view_change_count, 3);
        assert_eq!(payload.view_change_bytes, 450);
        // A second build for the same view is suppressed.
        assert!(state.build_new_view(View(2), 3).is_none());
    }

    #[test]
    fn duplicate_view_change_from_same_sender_is_ignored() {
        let mut state = ViewChangeState::new();
        assert_eq!(
            state.record_view_change(View(2), NodeId(0), SeqNum(0), vec![], 10),
            1
        );
        assert_eq!(
            state.record_view_change(View(2), NodeId(0), SeqNum(4), vec![entry(9)], 10),
            1
        );
    }

    #[test]
    fn view_change_wire_size_grows_with_entries() {
        let empty = view_change_wire_size(&[]);
        let one = view_change_wire_size(&[entry(1)]);
        assert!(one > empty);
    }
}
